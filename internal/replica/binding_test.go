package replica

import (
	"context"
	"fmt"
	"testing"

	"ycsbt/internal/db"
	"ycsbt/internal/properties"
)

// TestReplicaBinding drives the registered "replica" binding through
// the db registry with an explicit quorum, checking the property
// plumbing and that the benchmark-facing surface replicates.
func TestReplicaBinding(t *testing.T) {
	d, err := db.Open("replica")
	if err != nil {
		t.Fatal(err)
	}
	p := properties.New()
	p.Set("replica.backups", "3")
	p.Set("replica.sync", "true")
	p.Set("replica.quorum", "2")
	if err := d.Init(p); err != nil {
		t.Fatal(err)
	}
	defer d.Cleanup()
	rb := d.(*Binding)
	if got := rb.Replicated().Quorum(); got != 2 {
		t.Fatalf("quorum = %d, want 2", got)
	}

	ctx := context.Background()
	for i := 0; i < 20; i++ {
		key := fmt.Sprintf("user%02d", i)
		if err := d.Insert(ctx, "t", key, db.Record{"f": []byte("v")}); err != nil {
			t.Fatal(err)
		}
	}
	rec, err := d.Read(ctx, "t", "user07", nil)
	if err != nil || string(rec["f"]) != "v" {
		t.Fatalf("Read = %v, %v", rec, err)
	}
	if err := d.Update(ctx, "t", "user07", db.Record{"f": []byte("v2")}); err != nil {
		t.Fatal(err)
	}
	if err := d.Delete(ctx, "t", "user19"); err != nil {
		t.Fatal(err)
	}
	kvs, err := rb.Scan(ctx, "t", "", -1, nil)
	if err != nil || len(kvs) != 19 {
		t.Fatalf("Scan = %d, %v", len(kvs), err)
	}
	// Everything above was acknowledged at quorum 2 of 3; once the
	// stragglers drain all three backups converge.
	rb.Replicated().Flush()
	for b := 0; b < 3; b++ {
		if div := rb.Replicated().Divergence("t", b); div != 0 {
			t.Errorf("backup %d diverges by %d", b, div)
		}
	}
}

// TestReplicaBindingDefaults: the zero-property path builds an async
// single-backup group, the documented default.
func TestReplicaBindingDefaults(t *testing.T) {
	d, err := db.Open("replica")
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Init(properties.New()); err != nil {
		t.Fatal(err)
	}
	defer d.Cleanup()
	ctx := context.Background()
	if err := d.Insert(ctx, "t", "k", db.Record{"f": []byte("v")}); err != nil {
		t.Fatal(err)
	}
	rb := d.(*Binding)
	rb.Replicated().Flush()
	if div := rb.Replicated().Divergence("t", 0); div != 0 {
		t.Errorf("backup diverges by %d", div)
	}
}
