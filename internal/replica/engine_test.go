package replica

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"ycsbt/internal/kvstore"
	"ycsbt/internal/obs"
)

func TestEngineAdapterImplementsEngine(t *testing.T) {
	s, err := New(Config{Name: "r", Backups: 1, Mode: Sync})
	if err != nil {
		t.Fatal(err)
	}
	var eng kvstore.Engine = s.Engine()
	defer eng.Close()

	if _, err := eng.Insert("t", "a", fieldsOf("1")); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Insert("t", "a", fieldsOf("dup")); !errors.Is(err, kvstore.ErrExists) {
		t.Fatalf("duplicate insert: %v", err)
	}
	ver, err := eng.Put("t", "b", fieldsOf("2"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.PutIfVersion("t", "b", fieldsOf("2b"), ver); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.PutIfVersion("t", "b", fieldsOf("stale"), ver); !errors.Is(err, kvstore.ErrVersionMismatch) {
		t.Fatalf("stale CAS: %v", err)
	}
	if _, err := eng.Update("t", "a", map[string][]byte{"g": []byte("merged")}); err != nil {
		t.Fatal(err)
	}
	rec, err := eng.Get("t", "a")
	if err != nil {
		t.Fatal(err)
	}
	if string(rec.Fields["f"]) != "1" || string(rec.Fields["g"]) != "merged" {
		t.Fatalf("update did not merge: %v", rec.Fields)
	}
	if got := eng.Len("t"); got != 2 {
		t.Fatalf("Len = %d, want 2", got)
	}
	kvs, err := eng.Scan("t", "a", 10)
	if err != nil || len(kvs) != 2 {
		t.Fatalf("Scan = %d records, err %v", len(kvs), err)
	}
	if tables := eng.Tables(); len(tables) != 1 || tables[0] != "t" {
		t.Fatalf("Tables = %v", tables)
	}
	if err := eng.Delete("t", "b"); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Get("t", "b"); !errors.Is(err, kvstore.ErrNotFound) {
		t.Fatalf("deleted key: %v", err)
	}
	if err := eng.Compact(); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.WALSize(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Sync(); err != nil {
		t.Fatal(err)
	}
	// Sync mode: the surviving record already sits on the backup.
	brec, err := s.Backup(0).Get("t", "a")
	if err != nil || string(brec.Fields["g"]) != "merged" {
		t.Fatalf("backup image: %v / %v", brec, err)
	}
}

func TestEngineBatchApplyReplicatesPostImages(t *testing.T) {
	s, err := New(Config{Name: "r", Backups: 2, Mode: Async})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	eng := s.Engine()

	if _, err := eng.Put("t", "upd", fieldsOf("base")); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Put("t", "gone", fieldsOf("x")); err != nil {
		t.Fatal(err)
	}
	res := eng.BatchApply([]kvstore.Mutation{
		{Op: kvstore.MutPut, Table: "t", Key: "put", Fields: fieldsOf("p"), Expect: kvstore.AnyVersion},
		{Op: kvstore.MutUpdate, Table: "t", Key: "upd", Fields: map[string][]byte{"g": []byte("m")}},
		{Op: kvstore.MutDelete, Table: "t", Key: "gone", Expect: kvstore.AnyVersion},
		{Op: kvstore.MutPut, Table: "t", Key: "cas", Fields: fieldsOf("no"), Expect: 999}, // fails
	})
	for i, want := range []bool{true, true, true, false} {
		if got := res[i].Err == nil; got != want {
			t.Fatalf("item %d: err=%v, want success=%v", i, res[i].Err, want)
		}
	}
	s.Flush()
	for i := 0; i < 2; i++ {
		b := s.Backup(i)
		if rec, err := b.Get("t", "put"); err != nil || string(rec.Fields["f"]) != "p" {
			t.Errorf("backup %d put: %v / %v", i, rec, err)
		}
		// The update replicated as its full post-image.
		if rec, err := b.Get("t", "upd"); err != nil ||
			string(rec.Fields["f"]) != "base" || string(rec.Fields["g"]) != "m" {
			t.Errorf("backup %d update post-image: %v / %v", i, rec, err)
		}
		if _, err := b.Get("t", "gone"); !errors.Is(err, kvstore.ErrNotFound) {
			t.Errorf("backup %d delete: %v", i, err)
		}
		if _, err := b.Get("t", "cas"); !errors.Is(err, kvstore.ErrNotFound) {
			t.Errorf("backup %d: failed CAS leaked to backup: %v", i, err)
		}
	}
	if d := s.Divergence("t", 0); d != 0 {
		t.Fatalf("divergence after flush = %d", d)
	}
}

func TestEngineBatchGetFollowsReadPolicy(t *testing.T) {
	s, err := New(Config{Name: "r", Backups: 1, Mode: Sync})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	eng := s.Engine()
	if _, err := eng.Put("t", "a", fieldsOf("1")); err != nil {
		t.Fatal(err)
	}
	res := eng.BatchGet([]kvstore.GetReq{
		{Table: "t", Key: "a"},
		{Table: "t", Key: "missing"},
	})
	if res[0].Err != nil || string(res[0].Record.Fields["f"]) != "1" {
		t.Fatalf("hit: %+v", res[0])
	}
	if !errors.Is(res[1].Err, kvstore.ErrNotFound) {
		t.Fatalf("miss: %v", res[1].Err)
	}
}

func TestEngineBulkLoadReachesAllReplicas(t *testing.T) {
	s, err := New(Config{Name: "r", Backups: 2, Mode: Async})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	kvs := []kvstore.BulkKV{
		{Key: "a", Fields: fieldsOf("1")},
		{Key: "b", Fields: fieldsOf("2")},
	}
	if err := s.Engine().BulkLoad("t", kvs); err != nil {
		t.Fatal(err)
	}
	if s.Lag() != 0 {
		t.Fatalf("bulk load went through the replication queue: lag=%d", s.Lag())
	}
	for i := 0; i < 2; i++ {
		if got := s.Backup(i).Len("t"); got != 2 {
			t.Fatalf("backup %d Len = %d, want 2", i, got)
		}
	}
}

// TestPipelinedLagPaidOncePerBatch is the pipelining property: with N
// backups each charging the replica-lag hop, one apply round costs
// about one lag, not N of them, because each backup ships in its own
// goroutine.
func TestPipelinedLagPaidOncePerBatch(t *testing.T) {
	const backups = 4
	const lag = 40 * time.Millisecond
	s, err := New(Config{Name: "r", Backups: backups, Mode: Async})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	start := time.Now()
	s.applyToBackups(lag, repOp{table: "t", key: "k", fields: fieldsOf("v")})
	elapsed := time.Since(start)
	if elapsed < lag {
		t.Fatalf("apply returned in %v, before the %v lag elapsed", elapsed, lag)
	}
	if elapsed >= time.Duration(backups)*lag {
		t.Fatalf("apply took %v: lag paid serially per backup (%d × %v)", elapsed, backups, lag)
	}
	for i := 0; i < backups; i++ {
		if _, err := s.Backup(i).Get("t", "k"); err != nil {
			t.Fatalf("backup %d missing the applied op: %v", i, err)
		}
	}
}

func TestReplicaMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	s, err := New(Config{Name: "r", Backups: 2, Mode: Async, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		if _, err := s.Put(ctx, "t", fmt.Sprintf("k%d", i), fieldsOf("v"), kvstore.AnyVersion); err != nil {
			t.Fatal(err)
		}
	}
	s.Flush()
	if got := reg.Counter("replica_applied_total").Value(); got != 10 {
		t.Fatalf("replica_applied_total = %d, want 10", got)
	}
	var b strings.Builder
	if err := reg.Export(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		"replica_lag_ops 0",
		"replica_queue_depth 0",
		"replica_applied_total 10",
		"replica_backup_batch_items_count",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
}
