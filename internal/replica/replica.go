// Package replica implements a primary-backup replicated key-value
// store over the embedded engine — the substrate for the replication
// trade-offs the paper's background section lays out ("Replicating
// data improves performance, system availability and avoids data
// loss. This can be done either synchronously or asynchronously.
// Synchronous replication increases write and update latency while
// asynchronous replication reduces latency but also reduces
// consistency guarantees caused by stale data").
//
// A replica.Store exposes the same interface as every other store
// substrate (versioned get/scan, conditional put/delete), so the
// transaction libraries and benchmark bindings run against it
// unchanged. Writes are evaluated at the primary; the committed
// post-image flows to each backup either through per-backup ordered
// lanes that acknowledge once a configurable quorum has applied
// (Sync — see Config.Quorum) or from a background queue with optional
// replication lag (Async).
//
// Fault injection mirrors the availability tier YCSB sketches:
// FailPrimary makes the primary unreachable, Promote elects the first
// backup — reporting how many acknowledged writes were still in the
// replication queue and are now lost (always zero under Sync).
package replica

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ycsbt/internal/kvstore"
	"ycsbt/internal/obs"
)

// Mode selects the replication discipline.
type Mode int

const (
	// Sync applies every write to a quorum of backups before
	// acknowledging; the remaining backups drain asynchronously from
	// per-backup ordered lanes (see Config.Quorum).
	Sync Mode = iota
	// Async acknowledges after the primary write and replicates from
	// a background queue.
	Async
)

// ReadPolicy selects where reads are served.
type ReadPolicy int

const (
	// ReadPrimary serves reads from the primary (strong).
	ReadPrimary ReadPolicy = iota
	// ReadBackup serves reads round-robin from the backups; under
	// Async this exposes replication lag as stale reads — the
	// "eventual consistency" end of the trade-off.
	ReadBackup
)

// Errors.
var (
	// ErrPrimaryDown reports an operation against a failed primary.
	ErrPrimaryDown = errors.New("replica: primary is down")
	// ErrClosed reports use after Close.
	ErrClosed = errors.New("replica: store is closed")
)

// Config tunes a replicated store.
type Config struct {
	// Name identifies the store to the transaction libraries.
	Name string
	// Backups is the number of backup replicas (≥ 1).
	Backups int
	// Mode is Sync or Async.
	Mode Mode
	// Quorum is how many backups must apply a Sync write before it is
	// acknowledged (1 ≤ Quorum ≤ Backups). 0 selects the majority
	// default ⌈(Backups+1)/2⌉ — with 1 or 2 backups that equals all of
	// them, so small deployments keep the classic "sync = everywhere"
	// semantics. Backups beyond the quorum receive the same writes in
	// the same order from their lanes, just off the ack path.
	// Ignored under Async.
	Quorum int
	// ReadPolicy is ReadPrimary or ReadBackup.
	ReadPolicy ReadPolicy
	// QueueSize bounds the async replication queue (default 4096);
	// a full queue applies backpressure (the write blocks).
	QueueSize int
	// ReplicaLag delays each async apply, modelling the network hop
	// to a remote backup.
	ReplicaLag time.Duration
	// Shards is the hash-partition count of each replica's engine; 0
	// means kvstore.DefaultShards.
	Shards int
	// Metrics, when non-nil, receives the replica_* series: lag and
	// queue-depth gauges, per-backup batch-size histogram, applied
	// counter.
	Metrics *obs.Registry
}

// repOp is one replicated operation (the committed post-image).
type repOp struct {
	del    bool
	table  string
	key    string
	fields map[string][]byte
}

// mutation converts the post-image to the engine's multi-key form.
func (op repOp) mutation() kvstore.Mutation {
	if op.del {
		return kvstore.Mutation{Op: kvstore.MutDelete, Table: op.table, Key: op.key, Expect: kvstore.AnyVersion}
	}
	return kvstore.Mutation{Op: kvstore.MutPut, Table: op.table, Key: op.key, Fields: op.fields, Expect: kvstore.AnyVersion}
}

// syncJob is one write travelling down every backup lane. Each lane
// applies it and sends one ack; the writer returns after quorum acks,
// and the lane whose decrement empties rem counts the write as fully
// replicated.
type syncJob struct {
	muts []kvstore.Mutation
	rem  *atomic.Int32
	ack  chan struct{}
}

// lane is one backup's ordered apply queue. A goroutine drains ch in
// FIFO order, so a slow backup can fall behind but never reorders
// writes; pending counts jobs enqueued and not yet applied so Promote,
// Close and BulkLoad can drain stragglers.
type lane struct {
	eng     *kvstore.Store
	ch      chan syncJob
	pending sync.WaitGroup
}

// laneQueueSize bounds each backup lane; a straggler more than this
// many writes behind applies backpressure (the writer blocks on the
// enqueue), keeping the quorum window bounded.
const laneQueueSize = 1024

// Store is a primary-backup replicated store.
type Store struct {
	cfg Config

	// topo guards the replica topology (which engine is primary,
	// which are backups); Promote rewires it while reads hold RLock.
	topo    sync.RWMutex
	primary *kvstore.Store
	backups []*kvstore.Store

	writeMu sync.Mutex // serializes the write path: primary apply + enqueue order
	queue   chan repOp
	drained chan struct{} // closed when the applier exits
	applied atomic.Int64
	acked   atomic.Int64

	// Sync-mode replication lanes, one per backup. Only the writer
	// (under writeMu) touches the slice; the goroutines live until
	// stopLanes closes their channels. quorum is atomic because the
	// metrics gauge reads it while Promote may be clamping it.
	quorum atomic.Int32
	lanes  []*lane
	laneWG sync.WaitGroup

	// stallBackup, when non-nil, runs in lane idx before each apply —
	// a test hook for modelling a stalled backup. Set it before the
	// first write (the enqueue's channel send orders the read).
	stallBackup func(idx int)

	rr     atomic.Int64 // round-robin backup cursor
	down   atomic.Bool
	closed atomic.Bool

	// obs handles; nil (uninstrumented) handles no-op.
	mBatchItems *obs.Histogram
	mApplied    *obs.Counter
}

// newEngine builds one replica's in-memory partitioned engine. Only
// the initial primary passes a registry: the kvstore_* series then
// count the writes the node acknowledges, not every backup copy of
// them. (A promoted backup serves uninstrumented; the replica_* series
// keep covering the node either way.)
func newEngine(shards int, reg *obs.Registry) *kvstore.Store {
	s, _ := kvstore.Open(kvstore.Options{Shards: shards, Metrics: reg}) // in-memory open cannot fail
	return s
}

// New builds a replicated store with fresh in-memory replicas.
func New(cfg Config) (*Store, error) {
	if cfg.Backups < 1 {
		return nil, fmt.Errorf("replica: need at least one backup, got %d", cfg.Backups)
	}
	if cfg.Quorum < 0 || cfg.Quorum > cfg.Backups {
		return nil, fmt.Errorf("replica: quorum %d out of range [1,%d]", cfg.Quorum, cfg.Backups)
	}
	if cfg.QueueSize <= 0 {
		cfg.QueueSize = 4096
	}
	if cfg.Shards <= 0 {
		cfg.Shards = kvstore.DefaultShards
	}
	quorum := cfg.Quorum
	if quorum == 0 {
		quorum = (cfg.Backups + 2) / 2 // ⌈(n+1)/2⌉: majority, = all for n ≤ 2
	}
	s := &Store{
		cfg:     cfg,
		primary: newEngine(cfg.Shards, cfg.Metrics),
		drained: make(chan struct{}),
	}
	s.quorum.Store(int32(quorum))
	for i := 0; i < cfg.Backups; i++ {
		s.backups = append(s.backups, newEngine(cfg.Shards, nil))
	}
	if cfg.Mode == Async {
		s.queue = make(chan repOp, cfg.QueueSize)
	}
	if reg := cfg.Metrics; reg != nil {
		reg.Help("replica_lag_ops", "Acknowledged writes not yet applied to every backup (bounded by the straggler lanes under Sync).")
		reg.Help("replica_queue_depth", "Post-images waiting in the async replication queue.")
		reg.Help("replica_backup_batch_items", "Post-images shipped per backup per engine batch.")
		reg.Help("replica_applied_total", "Writes fully replicated to all backups.")
		reg.Help("replica_quorum_size", "Backups that must apply a Sync write before it is acknowledged.")
		reg.GaugeFunc("replica_lag_ops", func() float64 { return float64(s.Lag()) })
		reg.GaugeFunc("replica_quorum_size", func() float64 { return float64(s.Quorum()) })
		reg.GaugeFunc("replica_queue_depth", func() float64 {
			if s.queue == nil {
				return 0
			}
			return float64(len(s.queue))
		})
		s.mBatchItems = reg.Histogram("replica_backup_batch_items", obs.CountBuckets)
		s.mApplied = reg.Counter("replica_applied_total")
	}
	if cfg.Mode == Async {
		go s.applier()
	} else {
		close(s.drained)
		s.startLanes()
	}
	return s, nil
}

// Quorum reports how many backups must apply a Sync write before the
// writer is acknowledged.
func (s *Store) Quorum() int { return int(s.quorum.Load()) }

// startLanes spawns one ordered apply lane per current backup. Called
// from New and (under writeMu) after Promote rewires the topology.
func (s *Store) startLanes() {
	s.topo.RLock()
	backups := s.backups
	s.topo.RUnlock()
	s.lanes = make([]*lane, len(backups))
	for i, b := range backups {
		l := &lane{eng: b, ch: make(chan syncJob, laneQueueSize)}
		s.lanes[i] = l
		s.laneWG.Add(1)
		go s.runLane(i, l)
	}
}

// runLane is one backup's apply loop: jobs arrive in write order and
// apply in write order. The lane that completes a job's last apply
// counts the write as fully replicated, then acks the writer.
func (s *Store) runLane(idx int, l *lane) {
	defer s.laneWG.Done()
	for job := range l.ch {
		if hook := s.stallBackup; hook != nil {
			hook(idx)
		}
		l.eng.BatchApply(job.muts) // per-item errors ignored: a missing key on delete is fine
		s.mBatchItems.Observe(float64(len(job.muts)))
		if job.rem.Add(-1) == 0 {
			s.applied.Add(int64(len(job.muts)))
			s.mApplied.Add(int64(len(job.muts)))
		}
		job.ack <- struct{}{}
		l.pending.Done()
	}
}

// drainLanes waits until every enqueued job has applied on every
// backup. Caller holds writeMu, so no new jobs arrive meanwhile.
func (s *Store) drainLanes() {
	for _, l := range s.lanes {
		l.pending.Wait()
	}
}

// stopLanes closes the (drained) lanes so their goroutines exit.
// Caller holds writeMu.
func (s *Store) stopLanes() {
	for _, l := range s.lanes {
		close(l.ch)
	}
	s.lanes = nil
	s.laneWG.Wait()
}

// maxApplyBatch bounds how many queued post-images the applier ships
// to the backups in one engine batch.
const maxApplyBatch = 64

// applier is the async replication worker: it drains the queue into
// bounded batches, paying the replica-lag hop and the backups' lock
// round once per batch rather than once per write — a backlog of N
// writes catches up in N/maxApplyBatch hops instead of N.
func (s *Store) applier() {
	defer close(s.drained)
	batch := make([]repOp, 0, maxApplyBatch)
	for op := range s.queue {
		batch = append(batch[:0], op)
	drain:
		for len(batch) < maxApplyBatch {
			select {
			case more, ok := <-s.queue:
				if !ok {
					break drain
				}
				batch = append(batch, more)
			default:
				break drain
			}
		}
		s.applyToBackups(s.cfg.ReplicaLag, batch...)
		s.applied.Add(int64(len(batch)))
		s.mApplied.Add(int64(len(batch)))
	}
}

// applyToBackups ships an ordered run of post-images to every backup
// through the engine's multi-key path, pipelined: each backup gets its
// own goroutine that pays the lag hop (the per-backup network delay)
// and then applies, so N backups cost one lag plus the slowest apply
// instead of N× either. The call still waits for every backup before
// returning, so batch k+1 never races batch k on the same backup —
// order within and across batches stays queue order, and a later put
// of the same key wins as it must. (Async path only; Sync replication
// flows through the per-backup lanes.)
func (s *Store) applyToBackups(lag time.Duration, ops ...repOp) {
	s.topo.RLock()
	backups := s.backups
	s.topo.RUnlock()
	muts := make([]kvstore.Mutation, len(ops))
	for i, op := range ops {
		if op.del {
			muts[i] = kvstore.Mutation{Op: kvstore.MutDelete, Table: op.table, Key: op.key, Expect: kvstore.AnyVersion}
		} else {
			muts[i] = kvstore.Mutation{Op: kvstore.MutPut, Table: op.table, Key: op.key, Fields: op.fields, Expect: kvstore.AnyVersion}
		}
	}
	ship := func(b *kvstore.Store) {
		if lag > 0 {
			time.Sleep(lag)
		}
		b.BatchApply(muts) // per-item errors ignored: a missing key on delete is fine
		s.mBatchItems.Observe(float64(len(muts)))
	}
	if len(backups) == 1 {
		ship(backups[0])
		return
	}
	var wg sync.WaitGroup
	for _, b := range backups {
		wg.Add(1)
		go func(b *kvstore.Store) {
			defer wg.Done()
			ship(b)
		}(b)
	}
	wg.Wait()
}

// replicate ships one committed post-image per the mode. Caller holds
// writeMu, so lane/queue order matches primary apply order. Sync mode
// pays no lag hop (the lag models the async path's network distance).
//
// Under Sync the write goes down every backup lane but the writer
// waits for only quorum acks: a stalled backup off the quorum path
// cannot add latency, it just drains later (bounded by laneQueueSize,
// after which its lane's enqueue blocks the writer — backpressure, not
// unbounded divergence).
func (s *Store) replicate(op repOp) {
	s.acked.Add(1)
	if s.cfg.Mode == Sync {
		job := syncJob{
			muts: []kvstore.Mutation{op.mutation()},
			rem:  new(atomic.Int32),
			ack:  make(chan struct{}, len(s.lanes)),
		}
		job.rem.Store(int32(len(s.lanes)))
		for _, l := range s.lanes {
			l.pending.Add(1)
			l.ch <- job
		}
		for i := 0; i < s.Quorum(); i++ {
			<-job.ack
		}
		return
	}
	s.queue <- op
}

// Name implements the store interface.
func (s *Store) Name() string { return s.cfg.Name }

// Lag reports acknowledged writes not yet applied to every backup —
// the async queue backlog, or under Sync the writes still draining
// through straggler lanes beyond the quorum (0 when quorum = all).
func (s *Store) Lag() int64 { return s.acked.Load() - s.applied.Load() }

// Flush blocks until every acknowledged write reaches every backup
// (the async queue or the sync straggler lanes drain).
func (s *Store) Flush() {
	for s.Lag() > 0 && !s.closed.Load() {
		time.Sleep(time.Millisecond)
	}
}

func (s *Store) checkUp() error {
	if s.closed.Load() {
		return ErrClosed
	}
	if s.down.Load() {
		return ErrPrimaryDown
	}
	return nil
}

// readTarget picks the engine a read goes to per the read policy.
func (s *Store) readTarget() (*kvstore.Store, error) {
	if s.closed.Load() {
		return nil, ErrClosed
	}
	s.topo.RLock()
	defer s.topo.RUnlock()
	if s.cfg.ReadPolicy == ReadBackup {
		return s.backups[int(s.rr.Add(1))%len(s.backups)], nil
	}
	if s.down.Load() {
		return nil, ErrPrimaryDown
	}
	return s.primary, nil
}

// Get implements the store interface per the read policy.
func (s *Store) Get(_ context.Context, table, key string) (*kvstore.VersionedRecord, error) {
	t, err := s.readTarget()
	if err != nil {
		return nil, err
	}
	return t.Get(table, key)
}

// Put implements the store interface: conditional at the primary,
// post-image replicated.
func (s *Store) Put(_ context.Context, table, key string, fields map[string][]byte, expect uint64) (uint64, error) {
	if err := s.checkUp(); err != nil {
		return 0, err
	}
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	s.topo.RLock()
	primary := s.primary
	s.topo.RUnlock()
	ver, err := primary.PutIfVersion(table, key, fields, expect)
	if err != nil {
		return 0, err
	}
	s.replicate(repOp{table: table, key: key, fields: cloneFields(fields)})
	return ver, nil
}

// Delete implements the store interface.
func (s *Store) Delete(_ context.Context, table, key string, expect uint64) error {
	if err := s.checkUp(); err != nil {
		return err
	}
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	s.topo.RLock()
	primary := s.primary
	s.topo.RUnlock()
	if err := primary.DeleteIfVersion(table, key, expect); err != nil {
		return err
	}
	s.replicate(repOp{del: true, table: table, key: key})
	return nil
}

// Scan implements the store interface per the read policy.
func (s *Store) Scan(_ context.Context, table, startKey string, count int) ([]kvstore.VersionedKV, error) {
	t, err := s.readTarget()
	if err != nil {
		return nil, err
	}
	return t.Scan(table, startKey, count)
}

// Primary exposes the primary engine (for validation and tests).
func (s *Store) Primary() *kvstore.Store {
	s.topo.RLock()
	defer s.topo.RUnlock()
	return s.primary
}

// Backup exposes backup i.
func (s *Store) Backup(i int) *kvstore.Store {
	s.topo.RLock()
	defer s.topo.RUnlock()
	return s.backups[i]
}

// backupStreamPage bounds how many records each as-of scan pulls while
// streaming a backup snapshot.
const backupStreamPage = 1024

// BackupSnapshot streams a consistent cut of the primary into a fresh
// standalone store without blocking writers: it pins a snapshot
// timestamp, pages every table through ScanAsOf at that ts, and bulk
// loads the pages — versions and commit timestamps included — into the
// new engine. Concurrent writes proceed normally (the pin only defers
// version reclamation), and the result is exactly the primary's state
// as of the returned timestamp: a point-in-time backup, not a fuzzy
// copy. The caller owns the returned store.
func (s *Store) BackupSnapshot() (*kvstore.Store, int64, error) {
	if err := s.checkUp(); err != nil {
		return nil, 0, err
	}
	s.topo.RLock()
	primary := s.primary
	s.topo.RUnlock()
	ts, release := primary.Pin()
	defer release()
	dst, _ := kvstore.Open(kvstore.Options{Shards: s.cfg.Shards}) // in-memory open cannot fail
	for _, table := range primary.Tables() {
		var kvs []kvstore.BulkKV
		start := ""
		for {
			page, err := primary.ScanAsOf(table, start, backupStreamPage, ts)
			if err != nil {
				dst.Close()
				return nil, 0, err
			}
			for _, kv := range page {
				kvs = append(kvs, kvstore.BulkKV{
					Key:      kv.Key,
					Fields:   kv.Record.Fields,
					Version:  kv.Record.Version,
					CommitTS: kv.Record.CommitTS,
				})
			}
			if len(page) < backupStreamPage {
				break
			}
			start = page[len(page)-1].Key + "\x00"
		}
		if len(kvs) == 0 {
			continue
		}
		if err := dst.BulkLoad(table, kvs); err != nil {
			dst.Close()
			return nil, 0, err
		}
	}
	return dst, ts, nil
}

// FailPrimary simulates a primary crash: subsequent primary-path
// operations fail, and queued-but-unapplied writes are discarded, as
// a real crash would lose them.
func (s *Store) FailPrimary() {
	s.down.Store(true)
}

// Promote elects the first backup as the new primary and reports how
// many acknowledged writes were lost in the unreplicated queue
// (always 0 under Sync: straggler lanes are drained first, so even a
// backup that was behind the quorum catches up before taking over).
// The old primary is discarded.
func (s *Store) Promote() (lost int64) {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	if s.cfg.Mode == Async && s.queue != nil {
		// Discard whatever the dead primary had not shipped.
	drain:
		for {
			select {
			case <-s.queue:
				lost++
				s.applied.Add(1) // accounted: no longer lagging
			default:
				break drain
			}
		}
	}
	if s.cfg.Mode == Sync {
		// Every lane finishes its backlog, then the lanes are rebuilt
		// around the new backup set below.
		s.drainLanes()
		s.stopLanes()
	}
	s.topo.Lock()
	old := s.primary
	s.primary = s.backups[0]
	s.backups = append([]*kvstore.Store(nil), s.backups[1:]...)
	if len(s.backups) == 0 {
		// Keep at least one backup so the store stays replicated.
		s.backups = append(s.backups, newEngine(s.cfg.Shards, nil))
	}
	s.topo.Unlock()
	if s.cfg.Mode == Sync {
		// A promoted backup shrinks the replica set; never require more
		// acks than there are lanes.
		if n := int32(len(s.backups)); s.quorum.Load() > n {
			s.quorum.Store(n)
		}
		s.startLanes()
	}
	old.Close()
	s.down.Store(false)
	return lost
}

// Divergence counts keys whose value differs between the primary and
// backup i for the given table — a direct measure of replication
// staleness.
func (s *Store) Divergence(table string, i int) int {
	diff := 0
	seen := map[string]bool{}
	s.primary.ForEach(table, func(key string, rec *kvstore.VersionedRecord) bool {
		seen[key] = true
		brec, err := s.backups[i].Get(table, key)
		if err != nil || !fieldsEqual(rec.Fields, brec.Fields) {
			diff++
		}
		return true
	})
	s.backups[i].ForEach(table, func(key string, _ *kvstore.VersionedRecord) bool {
		if !seen[key] {
			diff++
		}
		return true
	})
	return diff
}

// Close shuts the store down, draining the async queue and the sync
// straggler lanes first.
func (s *Store) Close() error {
	s.writeMu.Lock()
	if s.closed.Swap(true) {
		s.writeMu.Unlock()
		return nil
	}
	if s.queue != nil {
		close(s.queue)
	}
	s.drainLanes()
	s.stopLanes()
	s.writeMu.Unlock()
	<-s.drained
	s.topo.RLock()
	defer s.topo.RUnlock()
	s.primary.Close()
	for _, b := range s.backups {
		b.Close()
	}
	return nil
}

func cloneFields(in map[string][]byte) map[string][]byte {
	out := make(map[string][]byte, len(in))
	for f, v := range in {
		out[f] = append([]byte(nil), v...)
	}
	return out
}

func fieldsEqual(a, b map[string][]byte) bool {
	if len(a) != len(b) {
		return false
	}
	for f, v := range a {
		if string(b[f]) != string(v) {
			return false
		}
	}
	return true
}
