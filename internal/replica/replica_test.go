package replica

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"ycsbt/internal/kvstore"
	"ycsbt/internal/txn"
)

func fieldsOf(s string) map[string][]byte {
	return map[string][]byte{"f": []byte(s)}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Backups: 0}); err == nil {
		t.Error("zero backups accepted")
	}
}

func TestSyncReplicationKeepsBackupsCurrent(t *testing.T) {
	s, err := New(Config{Name: "r", Backups: 2, Mode: Sync})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx := context.Background()
	for i := 0; i < 50; i++ {
		if _, err := s.Put(ctx, "t", fmt.Sprintf("k%d", i), fieldsOf("v"), kvstore.AnyVersion); err != nil {
			t.Fatal(err)
		}
	}
	if s.Lag() != 0 {
		t.Errorf("sync lag = %d", s.Lag())
	}
	for i := 0; i < 2; i++ {
		if d := s.Divergence("t", i); d != 0 {
			t.Errorf("backup %d diverges by %d", i, d)
		}
	}
	// Deletes replicate too.
	if err := s.Delete(ctx, "t", "k0", kvstore.AnyVersion); err != nil {
		t.Fatal(err)
	}
	if d := s.Divergence("t", 0); d != 0 {
		t.Errorf("divergence after delete = %d", d)
	}
}

func TestAsyncReplicationConvergesAfterFlush(t *testing.T) {
	s, err := New(Config{Name: "r", Backups: 1, Mode: Async, ReplicaLag: 100 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx := context.Background()
	for i := 0; i < 100; i++ {
		if _, err := s.Put(ctx, "t", fmt.Sprintf("k%02d", i), fieldsOf("v"), kvstore.AnyVersion); err != nil {
			t.Fatal(err)
		}
	}
	s.Flush()
	if s.Lag() != 0 {
		t.Errorf("lag after Flush = %d", s.Lag())
	}
	if d := s.Divergence("t", 0); d != 0 {
		t.Errorf("divergence after flush = %d", d)
	}
}

func TestAsyncStaleReadsFromBackup(t *testing.T) {
	s, err := New(Config{
		Name: "r", Backups: 1, Mode: Async,
		ReadPolicy: ReadBackup, ReplicaLag: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx := context.Background()
	if _, err := s.Put(ctx, "t", "k", fieldsOf("v1"), kvstore.AnyVersion); err != nil {
		t.Fatal(err)
	}
	// Immediately after the write the backup has not applied it: the
	// read is stale (here: not found), the Wada et al. scenario the
	// paper cites.
	if _, err := s.Get(ctx, "t", "k"); !errors.Is(err, kvstore.ErrNotFound) {
		t.Logf("backup read = %v (apply won the race; acceptable)", err)
	}
	s.Flush()
	rec, err := s.Get(ctx, "t", "k")
	if err != nil {
		t.Fatal(err)
	}
	if string(rec.Fields["f"]) != "v1" {
		t.Errorf("after flush = %s", rec.Fields["f"])
	}
}

func TestFailoverLosesAsyncButNotSyncWrites(t *testing.T) {
	ctx := context.Background()
	run := func(mode Mode) (lost int64, present int) {
		lag := time.Duration(0)
		if mode == Async {
			lag = 5 * time.Millisecond // ensure a backlog exists at failure
		}
		s, err := New(Config{Name: "r", Backups: 1, Mode: mode, ReplicaLag: lag})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		for i := 0; i < 30; i++ {
			if _, err := s.Put(ctx, "t", fmt.Sprintf("k%02d", i), fieldsOf("v"), kvstore.AnyVersion); err != nil {
				t.Fatal(err)
			}
		}
		s.FailPrimary()
		if _, err := s.Put(ctx, "t", "k99", fieldsOf("v"), kvstore.AnyVersion); !errors.Is(err, ErrPrimaryDown) {
			t.Errorf("write to failed primary = %v", err)
		}
		lost = s.Promote()
		kvs, err := s.Scan(ctx, "t", "", -1)
		if err != nil {
			t.Fatal(err)
		}
		return lost, len(kvs)
	}

	lostSync, presentSync := run(Sync)
	if lostSync != 0 || presentSync != 30 {
		t.Errorf("sync failover lost %d writes, %d present", lostSync, presentSync)
	}
	lostAsync, presentAsync := run(Async)
	if lostAsync == 0 {
		t.Error("async failover lost nothing despite replication lag (expected data loss)")
	}
	if int64(presentAsync)+lostAsync != 30 {
		t.Errorf("async accounting: %d present + %d lost != 30", presentAsync, lostAsync)
	}
	t.Logf("failover: sync lost %d, async lost %d of 30 acknowledged writes", lostSync, lostAsync)
}

func TestPromoteKeepsStoreUsable(t *testing.T) {
	s, err := New(Config{Name: "r", Backups: 1, Mode: Sync})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx := context.Background()
	s.Put(ctx, "t", "k", fieldsOf("v1"), kvstore.AnyVersion)
	s.FailPrimary()
	s.Promote()
	// Post-promotion: reads and writes work against the new primary.
	rec, err := s.Get(ctx, "t", "k")
	if err != nil || string(rec.Fields["f"]) != "v1" {
		t.Fatalf("read after promote = %v, %v", rec, err)
	}
	if _, err := s.Put(ctx, "t", "k2", fieldsOf("v2"), kvstore.AnyVersion); err != nil {
		t.Fatal(err)
	}
	// And the replacement backup receives new writes.
	if d := s.Divergence("t", 0); d > 1 {
		t.Errorf("new backup divergence = %d", d)
	}
}

func TestConditionalWritesEvaluateAtPrimary(t *testing.T) {
	s, err := New(Config{Name: "r", Backups: 1, Mode: Sync})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx := context.Background()
	v1, err := s.Put(ctx, "t", "k", fieldsOf("a"), kvstore.MustNotExist)
	if err != nil || v1 != 1 {
		t.Fatalf("create = %d, %v", v1, err)
	}
	if _, err := s.Put(ctx, "t", "k", fieldsOf("b"), 99); !errors.Is(err, kvstore.ErrVersionMismatch) {
		t.Errorf("stale CAS = %v", err)
	}
	if _, err := s.Put(ctx, "t", "k", fieldsOf("b"), 1); err != nil {
		t.Errorf("CAS = %v", err)
	}
}

func TestTransactionsOverReplicatedStore(t *testing.T) {
	// The replicated store satisfies the txn.Store interface, so the
	// client-coordinated library runs on top unchanged.
	s, err := New(Config{Name: "repl", Backups: 1, Mode: Sync})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	m, err := txn.NewManager(txn.Options{}, s)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := m.RunInTxn(ctx, 0, func(tx *txn.Txn) error {
		if err := tx.Insert("repl", "acct", "a", fieldsOf("100")); err != nil {
			return err
		}
		return tx.Insert("repl", "acct", "b", fieldsOf("100"))
	}); err != nil {
		t.Fatal(err)
	}
	// Committed cleanly on primary AND backups.
	if d := s.Divergence("acct", 0); d != 0 {
		t.Errorf("backup diverges after transactional commit: %d", d)
	}
	if s.Primary().Len("_tsr") != 0 {
		t.Error("TSR left on primary")
	}
}

func TestConcurrentWritesPreserveOrder(t *testing.T) {
	s, err := New(Config{Name: "r", Backups: 1, Mode: Async})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx := context.Background()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				s.Put(ctx, "t", "shared", fieldsOf(fmt.Sprintf("w%d-%d", w, i)), kvstore.AnyVersion)
			}
		}(w)
	}
	wg.Wait()
	s.Flush()
	// Backup must converge to exactly the primary's final value.
	if d := s.Divergence("t", 0); d != 0 {
		t.Errorf("backup diverged under concurrency: %d", d)
	}
}

func TestCloseSemantics(t *testing.T) {
	s, err := New(Config{Name: "r", Backups: 1, Mode: Async})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	s.Put(ctx, "t", "k", fieldsOf("v"), kvstore.AnyVersion)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal("double close should be a no-op")
	}
	if _, err := s.Get(ctx, "t", "k"); !errors.Is(err, ErrClosed) {
		t.Errorf("Get after close = %v", err)
	}
	if _, err := s.Put(ctx, "t", "k", fieldsOf("v"), kvstore.AnyVersion); !errors.Is(err, ErrClosed) {
		t.Errorf("Put after close = %v", err)
	}
}

func BenchmarkReplicationModes(b *testing.B) {
	for _, mode := range []struct {
		name string
		m    Mode
	}{{"Sync", Sync}, {"Async", Async}} {
		b.Run(mode.name, func(b *testing.B) {
			s, err := New(Config{Name: "r", Backups: 2, Mode: mode.m})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			ctx := context.Background()
			val := fieldsOf("some-value-payload")
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := s.Put(ctx, "t", fmt.Sprintf("k%06d", i%10000), val, kvstore.AnyVersion); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func TestPromoteRacesWithReaders(t *testing.T) {
	// Promote must not race with concurrent reads (run with -race).
	s, err := New(Config{Name: "r", Backups: 2, Mode: Sync})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx := context.Background()
	s.Put(ctx, "t", "k", fieldsOf("v"), kvstore.AnyVersion)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 500; i++ {
			s.Get(ctx, "t", "k")
			s.Scan(ctx, "t", "", 1)
		}
	}()
	s.FailPrimary()
	s.Promote()
	<-done
	if _, err := s.Get(ctx, "t", "k"); err != nil {
		t.Fatal(err)
	}
}

// TestAsyncBatchedApplierPreservesSameKeyOrder hammers one key with
// interleaved puts and deletes so the applier's batch-draining path
// (many queued post-images shipped in one engine batch) must apply
// them in queue order to converge on the final value.
func TestAsyncBatchedApplierPreservesSameKeyOrder(t *testing.T) {
	// Lag makes the queue back up, so drains span many ops per batch.
	s, err := New(Config{Name: "r", Backups: 2, Mode: Async, ReplicaLag: 200 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx := context.Background()
	const rounds = 300
	for i := 0; i < rounds; i++ {
		if _, err := s.Put(ctx, "t", "hot", fieldsOf(fmt.Sprintf("v%03d", i)), kvstore.AnyVersion); err != nil {
			t.Fatal(err)
		}
		if i%7 == 3 {
			if err := s.Delete(ctx, "t", "hot", kvstore.AnyVersion); err != nil {
				t.Fatal(err)
			}
			if _, err := s.Put(ctx, "t", "hot", fieldsOf(fmt.Sprintf("v%03d", i)), kvstore.AnyVersion); err != nil {
				t.Fatal(err)
			}
		}
	}
	s.Flush()
	if s.Lag() != 0 {
		t.Fatalf("lag after flush = %d", s.Lag())
	}
	want := fmt.Sprintf("v%03d", rounds-1)
	for b := 0; b < 2; b++ {
		rec, err := s.Backup(b).Get("t", "hot")
		if err != nil {
			t.Fatalf("backup %d: %v", b, err)
		}
		if got := string(rec.Fields["f"]); got != want {
			t.Fatalf("backup %d converged to %q, want %q", b, got, want)
		}
	}
}
