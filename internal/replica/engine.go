package replica

import (
	"context"

	"ycsbt/internal/kvstore"
)

// This file widens the replicated store to the full kvstore.Engine
// surface and wraps it in an adapter, so the HTTP server (and any
// other layer that programs against the engine seam) can serve a
// primary-backup replicated store instead of a single embedded one.
// Writes funnel through the primary under writeMu exactly like the
// point path; reads follow the configured ReadPolicy.

// Update merges fields at the primary and replicates the committed
// post-image. Backups always receive full records (a merge at the
// primary becomes a plain put downstream), so the post-image is read
// back under writeMu where it cannot move.
func (s *Store) Update(_ context.Context, table, key string, fields map[string][]byte) (uint64, error) {
	if err := s.checkUp(); err != nil {
		return 0, err
	}
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	s.topo.RLock()
	primary := s.primary
	s.topo.RUnlock()
	ver, err := primary.Update(table, key, fields)
	if err != nil {
		return 0, err
	}
	rec, err := primary.Get(table, key)
	if err != nil {
		return ver, err
	}
	s.replicate(repOp{table: table, key: key, fields: rec.Fields})
	return ver, nil
}

// BatchGet serves a batched read from the read-policy target.
func (s *Store) BatchGet(reqs []kvstore.GetReq) []kvstore.GetResult {
	t, err := s.readTarget()
	if err != nil {
		out := make([]kvstore.GetResult, len(reqs))
		for i := range out {
			out[i].Err = err
		}
		return out
	}
	return t.BatchGet(reqs)
}

// BatchApply evaluates the batch at the primary and replicates the
// post-image of every successful item, in batch order. Updates read
// their merged record back under writeMu, the same way Update does.
func (s *Store) BatchApply(muts []kvstore.Mutation) []kvstore.MutResult {
	if err := s.checkUp(); err != nil {
		out := make([]kvstore.MutResult, len(muts))
		for i := range out {
			out[i].Err = err
		}
		return out
	}
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	s.topo.RLock()
	primary := s.primary
	s.topo.RUnlock()
	out := primary.BatchApply(muts)
	for i, m := range muts {
		if out[i].Err != nil {
			continue
		}
		switch m.Op {
		case kvstore.MutDelete:
			s.replicate(repOp{del: true, table: m.Table, key: m.Key})
		case kvstore.MutUpdate:
			rec, err := primary.Get(m.Table, m.Key)
			if err == nil {
				s.replicate(repOp{table: m.Table, key: m.Key, fields: rec.Fields})
			}
		default:
			s.replicate(repOp{table: m.Table, key: m.Key, fields: cloneFields(m.Fields)})
		}
	}
	return out
}

// BulkLoad loads the primary and every backup directly, bypassing the
// replication queue — it is a load-phase operation like every other
// BulkLoad, not part of the replicated write path.
func (s *Store) BulkLoad(table string, kvs []kvstore.BulkKV) error {
	if err := s.checkUp(); err != nil {
		return err
	}
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	s.drainLanes() // stragglers finish before the load rewrites tables
	s.topo.RLock()
	defer s.topo.RUnlock()
	if err := s.primary.BulkLoad(table, kvs); err != nil {
		return err
	}
	for _, b := range s.backups {
		if err := b.BulkLoad(table, kvs); err != nil {
			return err
		}
	}
	return nil
}

// Ingest merges migrated records into the primary and every backup
// directly, like BulkLoad: a topology-change operation, not part of
// the replicated write path. writeMu keeps it ordered against live
// writes; lanes are drained so stragglers can't interleave with the
// version-preserving merge.
func (s *Store) Ingest(table string, kvs []kvstore.BulkKV) error {
	if err := s.checkUp(); err != nil {
		return err
	}
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	s.drainLanes()
	s.topo.RLock()
	defer s.topo.RUnlock()
	if err := s.primary.Ingest(table, kvs); err != nil {
		return err
	}
	for _, b := range s.backups {
		if err := b.Ingest(table, kvs); err != nil {
			return err
		}
	}
	return nil
}

// Engine adapts a replicated Store to the kvstore.Engine contract so
// it plugs into the seam future engines were promised — notably
// httpkv.Server, which makes kvserver a replicated node.
type Engine struct {
	s *Store
}

var _ kvstore.Engine = (*Engine)(nil)

// Engine returns the kvstore.Engine view of the replicated store.
func (s *Store) Engine() *Engine { return &Engine{s: s} }

func (e *Engine) Get(table, key string) (*kvstore.VersionedRecord, error) {
	return e.s.Get(context.Background(), table, key)
}

func (e *Engine) Put(table, key string, fields map[string][]byte) (uint64, error) {
	return e.s.Put(context.Background(), table, key, fields, kvstore.AnyVersion)
}

func (e *Engine) Insert(table, key string, fields map[string][]byte) (uint64, error) {
	return e.s.Put(context.Background(), table, key, fields, kvstore.MustNotExist)
}

func (e *Engine) PutIfVersion(table, key string, fields map[string][]byte, expect uint64) (uint64, error) {
	return e.s.Put(context.Background(), table, key, fields, expect)
}

func (e *Engine) Update(table, key string, fields map[string][]byte) (uint64, error) {
	return e.s.Update(context.Background(), table, key, fields)
}

func (e *Engine) Delete(table, key string) error {
	return e.s.Delete(context.Background(), table, key, kvstore.AnyVersion)
}

func (e *Engine) DeleteIfVersion(table, key string, expect uint64) error {
	return e.s.Delete(context.Background(), table, key, expect)
}

func (e *Engine) BatchGet(reqs []kvstore.GetReq) []kvstore.GetResult {
	return e.s.BatchGet(reqs)
}

func (e *Engine) BatchApply(muts []kvstore.Mutation) []kvstore.MutResult {
	return e.s.BatchApply(muts)
}

func (e *Engine) Scan(table, startKey string, count int) ([]kvstore.VersionedKV, error) {
	return e.s.Scan(context.Background(), table, startKey, count)
}

func (e *Engine) ForEach(table string, fn func(key string, rec *kvstore.VersionedRecord) bool) error {
	t, err := e.s.readTarget()
	if err != nil {
		return err
	}
	return t.ForEach(table, fn)
}

// Time travel. As-of reads always serve from the primary regardless
// of ReadPolicy: commit timestamps are drawn per engine, so a ts
// pinned on one replica is meaningless on another (backups re-commit
// post-images under their own clocks). This keeps SnapshotTS, Pin and
// the as-of reads one coherent clock domain.

func (e *Engine) SnapshotTS() int64 {
	return e.s.Primary().SnapshotTS()
}

func (e *Engine) Pin() (int64, func()) {
	return e.s.Primary().Pin()
}

func (e *Engine) GetAsOf(table, key string, ts int64) (*kvstore.VersionedRecord, error) {
	return e.s.Primary().GetAsOf(table, key, ts)
}

func (e *Engine) BatchGetAsOf(reqs []kvstore.GetReq, ts int64) []kvstore.GetResult {
	return e.s.Primary().BatchGetAsOf(reqs, ts)
}

func (e *Engine) ScanAsOf(table, startKey string, count int, ts int64) ([]kvstore.VersionedKV, error) {
	return e.s.Primary().ScanAsOf(table, startKey, count, ts)
}

func (e *Engine) ScanVersionsAsOf(table, startKey string, count int, ts int64) ([]kvstore.VersionedKV, error) {
	return e.s.Primary().ScanVersionsAsOf(table, startKey, count, ts)
}

func (e *Engine) Len(table string) int {
	t, err := e.s.readTarget()
	if err != nil {
		return 0
	}
	return t.Len(table)
}

func (e *Engine) Tables() []string {
	t, err := e.s.readTarget()
	if err != nil {
		return nil
	}
	return t.Tables()
}

func (e *Engine) BulkLoad(table string, kvs []kvstore.BulkKV) error {
	return e.s.BulkLoad(table, kvs)
}

func (e *Engine) Ingest(table string, kvs []kvstore.BulkKV) error {
	return e.s.Ingest(table, kvs)
}

// Compact compacts every replica; in-memory replicas make it a no-op.
func (e *Engine) Compact() error {
	e.s.topo.RLock()
	defer e.s.topo.RUnlock()
	if err := e.s.primary.Compact(); err != nil {
		return err
	}
	for _, b := range e.s.backups {
		if err := b.Compact(); err != nil {
			return err
		}
	}
	return nil
}

func (e *Engine) WALSize() (int64, error) {
	return e.s.Primary().WALSize()
}

func (e *Engine) Sync() error {
	return e.s.Primary().Sync()
}

func (e *Engine) Close() error {
	return e.s.Close()
}
