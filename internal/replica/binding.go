package replica

import (
	"time"

	"ycsbt/internal/db"
	"ycsbt/internal/kvstore"
	"ycsbt/internal/obs"
	"ycsbt/internal/properties"
)

// Binding adapts a replicated store group to the YCSB+T db.DB
// interface under the name "replica", so the benchmark drives the
// replication trade-offs directly:
//
//	ycsbt -db replica -p replica.backups=3 -p replica.sync=true \
//	      -p replica.quorum=2 -P workloads/workloada -load -t
//
// Properties:
//
//	replica.backups  backup replica count (default 1)
//	replica.sync     synchronous replication (default false = async)
//	replica.quorum   Sync acks required before acknowledging
//	                 (default 0 = majority ⌈(n+1)/2⌉)
//	replica.lag_ms   async replication delay per backup hop
//	replica.read     "primary" (default) or "backup" round-robin reads
//	kvstore.shards   hash partitions per replica engine
//	obs.enabled      register the replica_* and kvstore_* series
//
// All record operations delegate to the standard engine binding over
// the group's kvstore.Engine view, so batching (db.BatchDB) and field
// projection behave exactly like the embedded "kvstore" binding.
type Binding struct {
	*kvstore.Binding
	store *Store
}

func init() {
	db.Register("replica", func() (db.DB, error) { return &Binding{}, nil })
}

// Init builds the replica group per the replica.* properties.
func (b *Binding) Init(p *properties.Properties) error {
	mode := Async
	if p.GetBool("replica.sync", false) {
		mode = Sync
	}
	read := ReadPrimary
	if p.GetString("replica.read", "primary") == "backup" {
		read = ReadBackup
	}
	s, err := New(Config{
		Name:       "replica",
		Backups:    p.GetInt("replica.backups", 1),
		Mode:       mode,
		Quorum:     p.GetInt("replica.quorum", 0),
		ReadPolicy: read,
		ReplicaLag: time.Duration(p.GetInt64("replica.lag_ms", 0)) * time.Millisecond,
		Shards:     p.GetInt("kvstore.shards", kvstore.DefaultShards),
		Metrics:    obs.Enabled(p.GetBool("obs.enabled", false)),
	})
	if err != nil {
		return err
	}
	b.store = s
	b.Binding = kvstore.NewEngineBinding(s.Engine())
	return nil
}

// Cleanup closes the whole replica group.
func (b *Binding) Cleanup() error {
	if b.store == nil {
		return nil
	}
	return b.store.Close()
}

// Replicated exposes the underlying group (for tests and validation).
func (b *Binding) Replicated() *Store { return b.store }

var _ db.BatchDB = (*Binding)(nil)
