package client

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"ycsbt/internal/db"
	"ycsbt/internal/kvstore"
	"ycsbt/internal/measurement"
	"ycsbt/internal/properties"
	"ycsbt/internal/txn"
	"ycsbt/internal/workload"
)

func cewProps(over map[string]string) *properties.Properties {
	base := map[string]string{
		"workload":                  "closedeconomy",
		"db":                        "memory",
		"recordcount":               "200",
		"operationcount":            "2000",
		"totalcash":                 "20000",
		"threadcount":               "4",
		"readproportion":            "0.9",
		"readmodifywriteproportion": "0.1",
		"requestdistribution":       "zipfian",
	}
	for k, v := range over {
		base[k] = v
	}
	return properties.FromMap(base)
}

func TestLoadAndRunEndToEnd(t *testing.T) {
	ctx := context.Background()
	c, reg, err := NewFromProperties(cewProps(nil))
	if err != nil {
		t.Fatal(err)
	}
	loadRes, err := c.Load(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if loadRes.Operations != 200 {
		t.Errorf("load operations = %d", loadRes.Operations)
	}
	if loadRes.Validation == nil || !loadRes.Validation.Valid {
		t.Errorf("load validation = %+v", loadRes.Validation)
	}
	if reg.Snapshot(db.SeriesInsert).Operations != 200 {
		t.Errorf("INSERT ops = %d", reg.Snapshot(db.SeriesInsert).Operations)
	}

	runRes, err := c.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if runRes.Operations != 2000 {
		t.Errorf("run operations = %d", runRes.Operations)
	}
	if runRes.Throughput <= 0 {
		t.Errorf("throughput = %v", runRes.Throughput)
	}
	// Tier 5 series must all exist.
	for _, s := range []string{"START", "COMMIT", "READ", "TX-READ", "TX-READMODIFYWRITE", "READ-MODIFY-WRITE"} {
		if reg.Snapshot(s).Operations == 0 {
			t.Errorf("series %s empty; have %v", s, reg.Names())
		}
	}
	// Validation ran and operations were counted.
	if runRes.Validation == nil {
		t.Fatal("no validation result")
	}
	if runRes.Validation.Operations != 2000 {
		t.Errorf("validated operations = %d", runRes.Validation.Operations)
	}
}

func TestTransactionalCEWHasZeroAnomalyScore(t *testing.T) {
	// The headline YCSB+T property: with a real transactional binding
	// the CEW invariant holds under concurrency.
	ctx := context.Background()
	inner := kvstore.OpenMemory()
	defer inner.Close()
	m, err := txn.NewManager(txn.Options{}, txn.NewLocalStore("local", inner))
	if err != nil {
		t.Fatal(err)
	}
	binding := txn.NewBinding(m)

	p := cewProps(map[string]string{
		"operationcount":            "20000",
		"threadcount":               "16",
		"recordcount":               "500",
		"totalcash":                 "50000",
		"readproportion":            "0.3",
		"updateproportion":          "0.1",
		"insertproportion":          "0.05",
		"deleteproportion":          "0.1",
		"scanproportion":            "0.05",
		"readmodifywriteproportion": "0.4",
	})
	reg := measurement.NewRegistry(0)
	w, err := workload.New("closedeconomy")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Init(p, reg); err != nil {
		t.Fatal(err)
	}
	c, err := New(BuildConfig(p), w, binding, reg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Load(ctx); err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Validation == nil || !res.Validation.Valid {
		t.Fatalf("transactional run broke the invariant: %+v", res.Validation)
	}
	if res.Validation.AnomalyScore != 0 {
		t.Errorf("anomaly score = %v, want 0", res.Validation.AnomalyScore)
	}
	// Conflicted transactions abort; aborts are acceptable, anomalies
	// are not.
	t.Logf("transactional CEW: %d ops, %d aborts, score %g",
		res.Operations, res.Aborts, res.Validation.AnomalyScore)
}

func TestThrottling(t *testing.T) {
	ctx := context.Background()
	p := cewProps(map[string]string{
		"operationcount": "100",
		"threadcount":    "2",
		"target":         "200", // 200 ops/sec total → ≥ 500ms
	})
	c, _, err := NewFromProperties(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Load(ctx); err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.RunTime < 400*time.Millisecond {
		t.Errorf("throttled run finished in %v, want ≥ ~500ms", res.RunTime)
	}
	if res.Throughput > 260 {
		t.Errorf("throughput %v exceeds target 200 by too much", res.Throughput)
	}
}

func TestMaxExecutionTime(t *testing.T) {
	ctx := context.Background()
	p := cewProps(map[string]string{
		"operationcount":   "100000000", // effectively unbounded
		"threadcount":      "2",
		"target":           "50",
		"maxexecutiontime": "1",
	})
	c, _, err := NewFromProperties(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Load(ctx); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	res, err := c.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Errorf("maxexecutiontime not honoured: ran %v", elapsed)
	}
	if res.Operations >= 100000000 {
		t.Error("operation count not cut short")
	}
}

func TestStatusReporter(t *testing.T) {
	ctx := context.Background()
	var status bytes.Buffer
	p := cewProps(map[string]string{"operationcount": "200", "threadcount": "2", "target": "400"})
	cfg := BuildConfig(p)
	cfg.StatusInterval = 100 * time.Millisecond
	cfg.Status = &status

	w, err := workload.New("closedeconomy")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Init(p, nil); err != nil {
		t.Fatal(err)
	}
	d, _ := db.Open("memory")
	d.Init(p)
	c, err := New(cfg, w, d, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Load(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(ctx); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(status.String(), "current ops/sec") {
		t.Errorf("no status lines emitted: %q", status.String())
	}
}

func TestMiddlewareStackEndToEnd(t *testing.T) {
	ctx := context.Background()
	p := cewProps(map[string]string{
		"operationcount": "400",
		"threadcount":    "2",
		"middleware":     "trace,metered,retry",
	})
	c, reg, err := NewFromProperties(p)
	if err != nil {
		t.Fatal(err)
	}
	if c.OpLog() == nil {
		t.Fatal("trace middleware configured but no op log")
	}
	if _, err := c.Load(ctx); err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Operations != 400 {
		t.Errorf("run operations = %d", res.Operations)
	}
	// The metered layer recorded every series despite the longer stack.
	for _, s := range []string{"START", "COMMIT", "READ", "TX-READ"} {
		if reg.Snapshot(s).Operations == 0 {
			t.Errorf("series %s empty; have %v", s, reg.Names())
		}
	}
	// The trace layer, stacked outside metered, saw the same commits.
	log := c.OpLog()
	if log.Total() == 0 {
		t.Fatal("op log empty after traced run")
	}
	var traced int64
	for _, ev := range log.Events() {
		if ev.Op == "COMMIT" {
			traced++
		}
	}
	if want := reg.Snapshot(db.SeriesCommit).Operations; log.Total() < want {
		t.Errorf("op log total %d < metered COMMIT count %d", log.Total(), want)
	} else if traced == 0 {
		t.Error("no COMMIT events traced")
	}
}

func TestFaultInjectionDrivesAborts(t *testing.T) {
	ctx := context.Background()
	p := cewProps(map[string]string{
		"operationcount":          "300",
		"threadcount":             "2",
		"middleware":              "metered,faultinject",
		"faultinject.probability": "0.3",
	})
	c, _, err := NewFromProperties(p)
	if err != nil {
		t.Fatal(err)
	}
	// Load without faults (the stack applies to both phases here, so
	// tolerate load aborts; what matters is the run sees failures).
	if _, err := c.Load(ctx); err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Aborts == 0 {
		t.Error("30% injected faults produced zero aborts")
	}
	if res.Operations != 300 {
		t.Errorf("operations = %d; injected faults must not lose ops", res.Operations)
	}
}

func TestUnknownMiddlewareRejected(t *testing.T) {
	p := cewProps(map[string]string{"middleware": "metered,nosuch"})
	if _, _, err := NewFromProperties(p); err == nil {
		t.Error("unknown middleware accepted")
	}
	w, _ := workload.New("closedeconomy")
	if err := w.Init(cewProps(nil), nil); err != nil {
		t.Fatal(err)
	}
	d, _ := db.Open("memory")
	if _, err := New(Config{Threads: 1, Middleware: "bogus"}, w, d, nil); err == nil {
		t.Error("New accepted a bogus middleware stack")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Threads: 0}, nil, nil, nil); err == nil {
		t.Error("zero threads accepted")
	}
	w, _ := workload.New("core")
	if _, err := New(Config{Threads: 1}, w, nil, nil); err == nil {
		t.Error("nil db accepted")
	}
	c, _, err := NewFromProperties(properties.FromMap(map[string]string{
		"workload": "core", "db": "memory", "recordcount": "10", "operationcount": "0",
	}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(context.Background()); err == nil {
		t.Error("zero operationcount accepted at Run")
	}
	if _, _, err := NewFromProperties(properties.FromMap(map[string]string{"workload": "missing"})); err == nil {
		t.Error("unknown workload accepted")
	}
	if _, _, err := NewFromProperties(properties.FromMap(map[string]string{"db": "missing"})); err == nil {
		t.Error("unknown db accepted")
	}
}

func TestReportFormat(t *testing.T) {
	ctx := context.Background()
	c, _, err := NewFromProperties(cewProps(map[string]string{"operationcount": "300"}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Load(ctx); err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Report(&buf, res); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"[TOTAL CASH], 20000",
		"[COUNTED CASH],",
		"[ACTUAL OPERATIONS], 300",
		"[ANOMALY SCORE],",
		"[OVERALL], RunTime(ms),",
		"[OVERALL], Throughput(ops/sec),",
		"[READ], Operations,",
		"[COMMIT], Operations,",
		"[START], Operations,",
		"[TX-READ], Operations,",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestWorkloadErrorsAbortTransactions(t *testing.T) {
	// Force read errors: run CEW with delete-heavy ops so reads of
	// deleted keys fail; the client must abort and keep going.
	ctx := context.Background()
	p := cewProps(map[string]string{
		"operationcount":            "500",
		"deleteproportion":          "0.6",
		"readproportion":            "0.4",
		"readmodifywriteproportion": "0",
		"requestdistribution":       "uniform",
	})
	c, reg, err := NewFromProperties(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Load(ctx); err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Aborts == 0 {
		t.Error("no aborted transactions despite doomed deletes")
	}
	if reg.Snapshot(db.SeriesAbort).Operations != res.Aborts {
		t.Errorf("ABORT series = %d, aborts = %d",
			reg.Snapshot(db.SeriesAbort).Operations, res.Aborts)
	}
	// Even with failed ops, the invariant holds in a single-threaded
	// sense... but concurrent deletes can race; just assert the
	// validation ran.
	if res.Validation == nil {
		t.Error("validation skipped")
	}
}

func TestSkipValidation(t *testing.T) {
	ctx := context.Background()
	p := cewProps(map[string]string{"operationcount": "50", "threadcount": "1"})
	cfg := BuildConfig(p)
	cfg.SkipValidation = true
	w, _ := workload.New("closedeconomy")
	if err := w.Init(p, nil); err != nil {
		t.Fatal(err)
	}
	d, _ := db.Open("memory")
	d.Init(p)
	c, _ := New(cfg, w, d, nil)
	if _, err := c.Load(ctx); err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Validation != nil {
		t.Error("validation ran despite SkipValidation")
	}
}

func TestDeadlineNeverSplitsOperations(t *testing.T) {
	// A time-bounded single-threaded CEW run must end with anomaly
	// score exactly 0: the phase deadline may stop the loop only
	// between operations, never mid-RMW (a half-applied transfer
	// would fabricate an anomaly no store ever produced).
	ctx := context.Background()
	for round := 0; round < 3; round++ {
		p := cewProps(map[string]string{
			"operationcount":            "1000000000",
			"maxexecutiontime":          "1",
			"threadcount":               "1",
			"readproportion":            "0.5",
			"readmodifywriteproportion": "0.5",
		})
		c, _, err := NewFromProperties(p)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Load(ctx); err != nil {
			t.Fatal(err)
		}
		res, err := c.Run(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if res.Validation == nil || res.Validation.AnomalyScore != 0 {
			t.Fatalf("round %d: single-threaded time-bounded run drifted: %+v",
				round, res.Validation)
		}
	}
}
