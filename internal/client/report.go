package client

import (
	"fmt"
	"io"
)

// Version string printed at the top of every report, mirroring the
// paper's "YCSB+T Client 0.1".
const Version = "YCSB+T Client 0.1 (Go reproduction)"

// Report writes a phase result in the format of the paper's Listing
// 3: the validation outcome and anomaly score first, then the overall
// runtime and throughput, then every measurement series.
func Report(w io.Writer, res *Result) error {
	p := func(format string, args ...any) error {
		_, err := fmt.Fprintf(w, format, args...)
		return err
	}
	if v := res.Validation; v != nil {
		if !v.Valid {
			if err := p("Validation failed\n"); err != nil {
				return err
			}
		}
		if err := p("[TOTAL CASH], %d\n", v.Expected); err != nil {
			return err
		}
		if err := p("[COUNTED CASH], %d\n", v.Counted); err != nil {
			return err
		}
		if err := p("[ACTUAL OPERATIONS], %d\n", v.Operations); err != nil {
			return err
		}
		if err := p("[ANOMALY SCORE], %g\n", v.AnomalyScore); err != nil {
			return err
		}
		if !v.Valid {
			if err := p("Database validation failed\n"); err != nil {
				return err
			}
		}
	}
	if err := p("[OVERALL], RunTime(ms), %.1f\n", float64(res.RunTime.Microseconds())/1000); err != nil {
		return err
	}
	if err := p("[OVERALL], Throughput(ops/sec), %g\n", res.Throughput); err != nil {
		return err
	}
	if res.Aborts > 0 {
		if err := p("[OVERALL], AbortedTransactions, %d\n", res.Aborts); err != nil {
			return err
		}
	}
	if res.Timeline != nil {
		if err := res.Timeline.ExportText(w); err != nil {
			return err
		}
	}
	return res.Registry.ExportText(w)
}
