// Package client implements the YCSB+T workload executor: it drives a
// workload against a DB binding from N client threads, wraps every
// workload operation in a transaction (DB.Start before, DB.Commit on
// success, DB.Abort on failure — the Section IV-A architecture),
// captures the Tier 5 measurements (raw operation series, START /
// COMMIT / ABORT series, and the whole-transaction TX-<TYPE> series),
// and runs the Tier 6 validation stage after the phase completes.
//
// Bindings without transaction support inherit the no-op Start /
// Commit / Abort defaults, so the same client body measures both
// transactional and non-transactional systems — exactly how the paper
// compares them.
package client

import (
	"context"
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ycsbt/internal/db"
	"ycsbt/internal/history"
	"ycsbt/internal/measurement"
	"ycsbt/internal/properties"
	"ycsbt/internal/trace"
	"ycsbt/internal/workload"
)

// Config controls one benchmark phase execution. BuildConfig derives
// it from workload properties.
type Config struct {
	// Threads is the number of client threads (YCSB -threads).
	Threads int
	// OperationCount is the total operations of the transaction
	// phase.
	OperationCount int64
	// RecordCount is the number of records the load phase inserts.
	RecordCount int64
	// MaxExecutionTime bounds a phase's wall-clock time (0 = none).
	MaxExecutionTime time.Duration
	// TargetOpsPerSec throttles total throughput (0 = unthrottled).
	TargetOpsPerSec float64
	// HistogramBuckets is how many histogram lines the text report
	// prints per series (property "histogram.buckets").
	HistogramBuckets int
	// StatusInterval emits interim throughput lines to Status when
	// positive.
	StatusInterval time.Duration
	// Status receives interim status lines (nil = none).
	Status io.Writer
	// SkipValidation disables the Tier 6 stage.
	SkipValidation bool
	// TimelineInterval enables per-interval throughput recording
	// (YCSB's time-series measurement) when positive.
	TimelineInterval time.Duration
	// Middleware is the comma-separated middleware stack, outermost
	// first, that every client thread wraps around the binding
	// (property "middleware"; default "metered"). Empty means the
	// default.
	Middleware string
	// Props carries the run properties that property-configured
	// middlewares (retry, faultinject, …) read; nil means empty.
	Props *properties.Properties
	// History, when set, receives every finished transaction for
	// offline consistency certification (cmd/histcheck). Bindings
	// with native transaction machinery (history.CapableDB — txnkv)
	// feed it from their commit paths; any other binding gets the
	// capture middleware stacked innermost on every thread. cmd/ycsbt
	// wires this from the "history.file" property / -history flag.
	History history.TxnSink
}

// BuildConfig reads the standard YCSB/YCSB+T properties: threadcount,
// operationcount, recordcount, maxexecutiontime (seconds), target
// (total ops/sec), histogram.buckets, measurement.timeline_ms.
func BuildConfig(p *properties.Properties) Config {
	return Config{
		Threads:          p.GetInt("threadcount", 1),
		OperationCount:   p.GetInt64("operationcount", 1000),
		RecordCount:      p.GetInt64("recordcount", p.GetInt64("insertcount", 1000)),
		MaxExecutionTime: time.Duration(p.GetInt64("maxexecutiontime", 0)) * time.Second,
		TargetOpsPerSec:  p.GetFloat("target", 0),
		HistogramBuckets: p.GetInt("histogram.buckets", 0),
		TimelineInterval: time.Duration(p.GetInt64("measurement.timeline_ms", 0)) * time.Millisecond,
		Middleware:       p.GetString("middleware", "metered"),
		Props:            p,
	}
}

// Result is the outcome of one executed phase.
type Result struct {
	// Phase is "load" or "run".
	Phase string
	// RunTime is the phase's wall-clock duration.
	RunTime time.Duration
	// Operations is the number of completed workload operations
	// (committed or aborted).
	Operations int64
	// Aborts is the number of aborted transactions.
	Aborts int64
	// Throughput is Operations / RunTime in ops/sec.
	Throughput float64
	// Registry holds every measurement series of the phase.
	Registry *measurement.Registry
	// Validation is the Tier 6 outcome (nil when skipped).
	Validation *workload.ValidationResult
	// Timeline holds per-interval throughput when enabled.
	Timeline *measurement.Timeline
}

// Client executes phases of one workload against one binding. All
// phases share one measurement registry, so workload-level series
// (READ-MODIFY-WRITE) and client-level series land together.
type Client struct {
	cfg     Config
	w       workload.Workload
	d       db.DB // the raw binding
	reg     *measurement.Registry
	mwNames []string     // validated middleware stack, outermost first
	opLog   *trace.OpLog // operation log, when the stack traces
	shared  *db.MiddlewareState
	// histNative is true when the binding records history itself
	// (history.CapableDB); threads then skip the capture middleware so
	// transactions are never recorded twice.
	histNative bool
}

// New builds a client over an already-initialized workload and
// binding; reg may be nil, in which case a fresh registry is created.
// Prefer NewFromProperties for the common path.
func New(cfg Config, w workload.Workload, d db.DB, reg *measurement.Registry) (*Client, error) {
	if cfg.Threads <= 0 {
		return nil, fmt.Errorf("client: thread count %d", cfg.Threads)
	}
	if w == nil || d == nil {
		return nil, fmt.Errorf("client: nil workload or db")
	}
	if reg == nil {
		reg = measurement.NewRegistry(cfg.HistogramBuckets)
	}
	if cfg.Middleware == "" {
		cfg.Middleware = "metered"
	}
	if cfg.Props == nil {
		cfg.Props = properties.New()
	}
	mwNames, err := db.ParseMiddlewares(cfg.Middleware)
	if err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	c := &Client{cfg: cfg, w: w, d: d, reg: reg, mwNames: mwNames,
		shared: db.NewMiddlewareState()}
	for _, name := range mwNames {
		if name == "trace" {
			c.opLog = trace.NewOpLog(cfg.Props.GetInt("trace.oplog_size", trace.DefaultOpLogSize))
		}
	}
	if cfg.History != nil {
		c.SetHistory(cfg.History)
	}
	return c, nil
}

// SetHistory installs a history sink after construction (before the
// first phase): capable bindings record natively, everything else is
// captured by the per-thread middleware.
func (c *Client) SetHistory(sink history.TxnSink) {
	c.cfg.History = sink
	if capable, ok := c.d.(history.CapableDB); ok {
		capable.SetHistorySink(sink)
		c.histNative = true
	}
}

// Registry returns the client's shared measurement registry.
func (c *Client) Registry() *measurement.Registry { return c.reg }

// OpLog returns the operation log captured by the "trace" middleware
// (nil when the stack does not trace).
func (c *Client) OpLog() *trace.OpLog { return c.opLog }

// DB returns the raw (unmetered) binding.
func (c *Client) DB() db.DB { return c.d }

// Workload returns the workload under test.
func (c *Client) Workload() workload.Workload { return c.w }

// NewFromProperties instantiates workload and binding from the
// "workload" and "db" properties, initializes both, and returns a
// ready client plus the shared registry.
func NewFromProperties(p *properties.Properties) (*Client, *measurement.Registry, error) {
	cfg := BuildConfig(p)
	reg := measurement.NewRegistry(cfg.HistogramBuckets)
	w, err := workload.New(p.GetString("workload", "core"))
	if err != nil {
		return nil, nil, err
	}
	if err := w.Init(p, reg); err != nil {
		return nil, nil, err
	}
	d, err := db.Open(p.GetString("db", "memory"))
	if err != nil {
		return nil, nil, err
	}
	if err := d.Init(p); err != nil {
		return nil, nil, err
	}
	c, err := New(cfg, w, d, reg)
	if err != nil {
		return nil, nil, err
	}
	return c, reg, nil
}

// Load executes the load phase: RecordCount inserts spread over the
// configured threads, each wrapped in a transaction.
func (c *Client) Load(ctx context.Context) (*Result, error) {
	return c.phase(ctx, "load", c.cfg.RecordCount)
}

// Run executes the transaction phase: OperationCount workload
// operations spread over the configured threads.
func (c *Client) Run(ctx context.Context) (*Result, error) {
	return c.phase(ctx, "run", c.cfg.OperationCount)
}

func (c *Client) phase(ctx context.Context, name string, totalOps int64) (*Result, error) {
	if totalOps <= 0 {
		return nil, fmt.Errorf("client: %s phase with %d operations", name, totalOps)
	}

	if c.cfg.MaxExecutionTime > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.cfg.MaxExecutionTime)
		defer cancel()
	}

	var completed, aborts atomic.Int64
	var timeline *measurement.Timeline
	if c.cfg.TimelineInterval > 0 {
		timeline = measurement.NewTimeline(c.cfg.TimelineInterval)
	}
	start := time.Now()

	stopStatus := c.startStatusReporter(name, start)

	var wg sync.WaitGroup
	errs := make([]error, c.cfg.Threads)
	perThread := totalOps / int64(c.cfg.Threads)
	extra := totalOps % int64(c.cfg.Threads)
	for th := 0; th < c.cfg.Threads; th++ {
		ops := perThread
		if int64(th) < extra {
			ops++
		}
		if ops == 0 {
			continue
		}
		wg.Add(1)
		go func(th int, ops int64) {
			defer wg.Done()
			errs[th] = c.threadLoop(ctx, name, th, ops, timeline, &completed, &aborts)
		}(th, ops)
	}
	wg.Wait()
	if stopStatus != nil {
		stopStatus()
	}
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	res := &Result{
		Phase:      name,
		RunTime:    elapsed,
		Operations: completed.Load(),
		Aborts:     aborts.Load(),
		Registry:   c.reg,
		Timeline:   timeline,
	}
	if elapsed > 0 {
		res.Throughput = float64(res.Operations) / elapsed.Seconds()
	}
	if !c.cfg.SkipValidation {
		// Tier 6: validate against the raw binding so the validation
		// scan does not pollute the phase's measurements.
		v, err := c.w.Validate(ctx, c.d)
		if err != nil {
			return nil, fmt.Errorf("client: validation stage: %w", err)
		}
		res.Validation = v
	}
	return res, nil
}

// threadLoop is one client thread: per-op transaction wrapping with
// Tier 5 measurement and optional throttling. Each thread builds its
// own middleware chain over the shared binding, so the metered layer
// writes to thread-private measurement shards — no cross-thread lock
// or shared cache line is touched on the per-operation path.
func (c *Client) threadLoop(ctx context.Context, phase string, th int, ops int64, timeline *measurement.Timeline, completed, aborts *atomic.Int64) error {
	ts, err := c.w.InitThread(th, c.cfg.Threads)
	if err != nil {
		return err
	}
	rec := c.reg.Recorder()
	// Shared carries cross-thread singletons (the batching coalescer):
	// thread ops are sequential, so per-thread batching would always
	// pay the full linger — coalescing only works across threads.
	env := db.MiddlewareEnv{Props: c.cfg.Props, Recorder: rec, Shared: c.shared}
	if c.opLog != nil {
		env.Observer = c.opLog
	}
	mws, err := db.BuildMiddlewares(c.mwNames, env)
	if err != nil {
		return fmt.Errorf("client: thread %d middleware stack: %w", th, err)
	}
	if c.cfg.History != nil && !c.histNative {
		// Innermost, directly over the binding, so retries above do
		// not distort the recorded history.
		mws = append(mws, history.Middleware(c.cfg.History, th))
	}
	chain := db.Transactional(db.Chain(c.d, mws...))
	// Whole-transaction (TX-<TYPE>) series handles, resolved once per
	// op type; the map is thread-private, so lookups stay lock-free.
	txSeries := make(map[workload.OpType]*measurement.SeriesRecorder, 8)
	measureTx := func(op workload.OpType, d time.Duration, code int) {
		h := txSeries[op]
		if h == nil {
			h = rec.Series(workload.TxSeries(op))
			txSeries[op] = h
		}
		h.Measure(d, code)
	}
	var interval time.Duration
	if c.cfg.TargetOpsPerSec > 0 {
		perThread := c.cfg.TargetOpsPerSec / float64(c.cfg.Threads)
		interval = time.Duration(float64(time.Second) / perThread)
	}
	next := time.Now()
	// The phase deadline stops the loop BETWEEN operations; each
	// operation runs on a non-cancelling context so it completes its
	// read-modify-write sequence. Cutting an operation in half would
	// manufacture anomalies the store never produced (e.g. a CEW
	// transfer that debited but never credited) — the paper's runs
	// are bounded by operation count and never stop mid-operation.
	opCtx := context.WithoutCancel(ctx)
	if c.cfg.History != nil {
		// Tag the thread's operations with their session id so the
		// history feeder (manager or middleware) attributes them.
		opCtx = db.WithSession(opCtx, th)
	}
	for i := int64(0); i < ops; i++ {
		if ctx.Err() != nil {
			return nil // deadline reached: stop cleanly
		}
		if interval > 0 {
			if d := time.Until(next); d > 0 {
				select {
				case <-time.After(d):
				case <-ctx.Done():
					return nil
				}
			}
			next = next.Add(interval)
		}

		txTimer := time.Now()
		tctx, err := chain.Start(opCtx)
		if err != nil {
			// A failed Start is still a transaction attempt the run
			// made: record it under the TX series with the error's
			// return code instead of dropping the sample.
			op := workload.OpUnstarted
			if phase == "load" {
				op = workload.OpInsert
			}
			measureTx(op, time.Since(txTimer), db.ReturnCode(err))
			if timeline != nil {
				timeline.Record()
			}
			aborts.Add(1)
			completed.Add(1)
			continue
		}
		view := db.TxView(chain, tctx)
		var op workload.OpType
		if phase == "load" {
			op = workload.OpInsert
			err = c.w.Load(opCtx, view, ts)
		} else {
			op, err = c.w.Do(opCtx, view, ts)
		}
		if err == nil {
			err = chain.Commit(opCtx, tctx)
		} else {
			chain.Abort(opCtx, tctx)
			err = fmt.Errorf("%w: workload error: %v", db.ErrAborted, err)
		}
		if err != nil {
			aborts.Add(1)
			// Aborting discards the transaction's buffered writes; let
			// the workload discard any client-side state mirroring
			// them (CEW's escrow pot).
			if aa, ok := c.w.(workload.AbortAware); ok {
				aa.OnAbort(ts)
			}
		}
		measureTx(op, time.Since(txTimer), db.ReturnCode(err))
		if timeline != nil {
			timeline.Record()
		}
		completed.Add(1)
	}
	return nil
}

// txOperations sums the whole-transaction (TX-*) series from merged
// shard snapshots — the number of workload operations completed so
// far, readable mid-run without touching any per-thread state.
func (c *Client) txOperations() int64 {
	var total int64
	for _, n := range c.reg.Names() {
		if strings.HasPrefix(n, "TX-") {
			total += c.reg.Snapshot(n).Operations
		}
	}
	return total
}

// startStatusReporter launches the interim-throughput printer and
// returns a function that stops it and waits for it to finish (so the
// Status writer is quiescent when the phase returns). The reporter
// reads merged measurement snapshots — the write side is per-thread
// shards, so observing progress never interferes with the hot path.
func (c *Client) startStatusReporter(phase string, start time.Time) func() {
	if c.cfg.StatusInterval <= 0 || c.cfg.Status == nil {
		return nil
	}
	done := make(chan struct{})
	finished := make(chan struct{})
	base := c.txOperations() // registry may carry earlier phases
	go func() {
		defer close(finished)
		tick := time.NewTicker(c.cfg.StatusInterval)
		defer tick.Stop()
		prev := base
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				cur := c.txOperations()
				fmt.Fprintf(c.cfg.Status, "[%s] %s: %d operations; %.1f current ops/sec\n",
					phase, time.Since(start).Round(time.Second), cur-base,
					float64(cur-prev)/c.cfg.StatusInterval.Seconds())
				prev = cur
			}
		}
	}()
	return func() {
		close(done)
		<-finished
	}
}
