package client

import (
	"context"
	"testing"
	"time"

	"ycsbt/internal/cloudsim"
	"ycsbt/internal/kvstore"
	"ycsbt/internal/measurement"
	"ycsbt/internal/properties"
	"ycsbt/internal/txn"
	"ycsbt/internal/workload"
)

// runWriteSkew executes the write-skew workload end to end through
// the transaction library at the given isolation setting and returns
// the validation result.
func runWriteSkew(t *testing.T, serializable bool) *workload.ValidationResult {
	t.Helper()
	ctx := context.Background()
	// The store needs real (if small) per-request latency: on a
	// single-CPU host, purely in-memory transactions complete within
	// one scheduling quantum and never interleave, so the anomaly
	// window would never open.
	inner := kvstore.OpenMemory()
	t.Cleanup(func() { inner.Close() })
	store := cloudsim.NewOver(cloudsim.Config{
		Name:         "local",
		ReadLatency:  150 * time.Microsecond,
		WriteLatency: 300 * time.Microsecond,
	}, inner)
	m, err := txn.NewManager(txn.Options{SerializableReads: serializable}, store)
	if err != nil {
		t.Fatal(err)
	}
	p := properties.FromMap(map[string]string{
		"workload":             "writeskew",
		"recordcount":          "10", // pairs
		"operationcount":       "3000",
		"threadcount":          "16",
		"readproportion":       "0",
		"ws.depositproportion": "0.4",
		"ws.initial":           "100",
		"ws.withdraw":          "150",
		"requestdistribution":  "zipfian",
	})
	w, err := workload.New("writeskew")
	if err != nil {
		t.Fatal(err)
	}
	reg := measurement.NewRegistry(0)
	if err := w.Init(p, reg); err != nil {
		t.Fatal(err)
	}
	cfg := BuildConfig(p)
	cfg.RecordCount = 10
	c, err := New(cfg, w, txn.NewBinding(m), reg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Load(ctx); err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Validation == nil {
		t.Fatal("no validation result")
	}
	t.Logf("serializable=%v: %d violations over %d ops (%d aborts) — %s",
		serializable, res.Validation.Counted, res.Validation.Operations,
		res.Aborts, res.Validation.Detail)
	return res.Validation
}

// TestWriteSkewIsolationLevels is the Section VII experiment the
// paper sketches as future work: the same anomaly-targeting workload
// run at two isolation levels, with the Tier 6 score quantifying the
// difference. Snapshot isolation admits write skew; serializable-read
// validation eliminates it.
func TestWriteSkewIsolationLevels(t *testing.T) {
	serializable := runWriteSkew(t, true)
	if !serializable.Valid || serializable.AnomalyScore != 0 {
		t.Errorf("serializable isolation admitted write skew: %+v", serializable)
	}
	// Snapshot mode permits skew. It is probabilistic, so retry a few
	// times before concluding the workload cannot produce it.
	for attempt := 0; attempt < 5; attempt++ {
		snapshot := runWriteSkew(t, false)
		if snapshot.Counted > 0 {
			return // skew observed and quantified: exactly the point
		}
	}
	t.Error("snapshot isolation never exhibited write skew in 5 attempts; the workload is not exercising the anomaly")
}
