package kvstore

import (
	"fmt"
	"sync"
)

// partition is one shard of the store: a private set of B-trees (one
// per table) behind its own RWMutex, plus an optional WAL segment.
// The Store front routes every point operation to exactly one
// partition by key hash, so partitions never touch a shared lock or
// cache line on the hot path. A partition is exactly the old
// single-lock engine; a one-shard store behaves byte-identically to
// the pre-sharding code.
type partition struct {
	mu     sync.RWMutex
	tables map[string]*btree
	wal    *wal
	closed bool

	// metrics holds this shard's private obs handles; the zero value
	// (nil handles) is inert. Written once in Store.instrument before
	// the store is shared, read lock-free afterwards.
	metrics partMetrics
}

func newPartition(w *wal) *partition {
	return &partition{tables: make(map[string]*btree), wal: w}
}

// table returns the tree for name, creating it when absent. Caller
// must hold the write lock (or be in single-threaded open).
func (p *partition) table(name string) *btree {
	t, ok := p.tables[name]
	if !ok {
		t = newBTree()
		p.tables[name] = t
	}
	return t
}

// applyReplay applies one WAL record during recovery, bypassing
// version checks (the log records outcomes, not intents). Runs
// single-threaded during open, before the partition is published.
func (p *partition) applyReplay(rec walRecord) error {
	tree := p.table(rec.Table)
	switch rec.Op {
	case walPut:
		tree.put(rec.Key, &VersionedRecord{Version: rec.Version, Fields: rec.Fields})
	case walDelete:
		tree.delete(rec.Key)
	default:
		return fmt.Errorf("unknown WAL op %d", rec.Op)
	}
	return nil
}

func (p *partition) isClosed() bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.closed
}

func (p *partition) get(table, key string) (*VersionedRecord, error) {
	p.metrics.gets.Inc()
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return nil, ErrClosed
	}
	return p.getLocked(table, key)
}

// getLocked is the read core, requiring at least p.mu.RLock.
func (p *partition) getLocked(table, key string) (*VersionedRecord, error) {
	t := p.tables[table]
	if t == nil {
		return nil, fmt.Errorf("%w: %s/%s", ErrNotFound, table, key)
	}
	v := t.get(key)
	if v == nil {
		return nil, fmt.Errorf("%w: %s/%s", ErrNotFound, table, key)
	}
	return v.clone(), nil
}

// each calls fn for every index of idx, or for 0..n-1 when idx is nil
// (the single-partition fast path, which skips building index lists).
func each(n int, idx []int, fn func(i int)) {
	if idx == nil {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	for _, i := range idx {
		fn(i)
	}
}

func errBadMutOp(op MutOp) error {
	return fmt.Errorf("kvstore: unknown mutation op %d", op)
}

// putIfVersion is the conditional-put core. When the WAL is in
// group-commit + sync mode the durability wait happens after the
// partition lock is released, so other writers proceed during the
// window — that interleaving is the whole point of group commit. The
// WAL pointer is captured under the lock because compact swaps p.wal
// while holding it; waiting on the captured object stays correct
// since the old WAL's close performs a final group sync that wakes
// its waiters.
func (p *partition) putIfVersion(table, key string, fields map[string][]byte, expect uint64) (uint64, error) {
	p.metrics.puts.Inc()
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return 0, ErrClosed
	}
	w := p.wal
	ver, seq, err := p.putLocked(w, table, key, fields, expect, false)
	p.mu.Unlock()
	if err != nil {
		return 0, err
	}
	if seq != 0 {
		if err := w.waitDurable(seq); err != nil {
			return 0, err
		}
	}
	return ver, nil
}

func (p *partition) update(table, key string, fields map[string][]byte) (uint64, error) {
	p.metrics.puts.Inc()
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return 0, ErrClosed
	}
	w := p.wal // captured under p.mu: compact may swap p.wal after unlock
	ver, seq, err := p.putLocked(w, table, key, fields, AnyVersion, true)
	p.mu.Unlock()
	if err != nil {
		return 0, err
	}
	if seq != 0 {
		if err := w.waitDurable(seq); err != nil {
			return 0, err
		}
	}
	return ver, nil
}

// putLocked is the put/update core, requiring p.mu (write). With
// merge set it merges fields into the existing record (which must
// exist); otherwise it evaluates expect and stores a full replacement.
// It returns the WAL sequence the caller must wait on for durability
// (0 = none). The WAL handle is passed in because callers capture
// p.wal under the lock and wait on that same object after unlocking.
func (p *partition) putLocked(w *wal, table, key string, fields map[string][]byte, expect uint64, merge bool) (uint64, uint64, error) {
	t := p.table(table)
	cur := t.get(key)
	var stored *VersionedRecord
	if merge {
		if cur == nil {
			return 0, 0, fmt.Errorf("%w: %s/%s", ErrNotFound, table, key)
		}
		stored = cur.clone()
		stored.Version = cur.Version + 1
		for f, b := range fields {
			stored.Fields[f] = append([]byte(nil), b...)
		}
	} else {
		switch expect {
		case AnyVersion:
		case MustNotExist:
			if cur != nil {
				return 0, 0, fmt.Errorf("%w: %s/%s", ErrExists, table, key)
			}
		default:
			if cur == nil {
				return 0, 0, fmt.Errorf("%w: %s/%s not found, expected version %d", ErrVersionMismatch, table, key, expect)
			}
			if cur.Version != expect {
				return 0, 0, fmt.Errorf("%w: %s/%s at version %d, expected %d", ErrVersionMismatch, table, key, cur.Version, expect)
			}
		}
		var next uint64 = 1
		if cur != nil {
			next = cur.Version + 1
		}
		stored = &VersionedRecord{Version: next, Fields: make(map[string][]byte, len(fields))}
		for f, b := range fields {
			stored.Fields[f] = append([]byte(nil), b...)
		}
	}
	var seq uint64
	if w != nil {
		var err error
		if seq, err = w.append(walRecord{Op: walPut, Table: table, Key: key, Version: stored.Version, Fields: stored.Fields}); err != nil {
			return 0, 0, err
		}
	}
	t.put(key, stored)
	return stored.Version, seq, nil
}

func (p *partition) deleteIfVersion(table, key string, expect uint64) error {
	p.metrics.deletes.Inc()
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrClosed
	}
	w := p.wal // captured under p.mu: compact may swap p.wal after unlock
	seq, err := p.deleteLocked(w, table, key, expect)
	p.mu.Unlock()
	if err != nil {
		return err
	}
	if seq != 0 {
		if err := w.waitDurable(seq); err != nil {
			return err
		}
	}
	return nil
}

// deleteLocked is the delete core, requiring p.mu (write). It returns
// the WAL sequence the caller must wait on for durability (0 = none).
func (p *partition) deleteLocked(w *wal, table, key string, expect uint64) (uint64, error) {
	t := p.table(table)
	cur := t.get(key)
	if cur == nil {
		return 0, fmt.Errorf("%w: %s/%s", ErrNotFound, table, key)
	}
	if expect != AnyVersion && cur.Version != expect {
		return 0, fmt.Errorf("%w: %s/%s at version %d, expected %d", ErrVersionMismatch, table, key, cur.Version, expect)
	}
	var seq uint64
	if w != nil {
		var err error
		if seq, err = w.append(walRecord{Op: walDelete, Table: table, Key: key}); err != nil {
			return 0, err
		}
	}
	t.delete(key)
	return seq, nil
}

// scan returns up to count records with key ≥ startKey from this
// partition, in key order. A count < 0 means no limit.
func (p *partition) scan(table, startKey string, count int) ([]VersionedKV, error) {
	p.metrics.scans.Inc()
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return nil, ErrClosed
	}
	t := p.tables[table]
	if t == nil {
		return nil, nil
	}
	var out []VersionedKV
	t.ascend(startKey, func(key string, val *VersionedRecord) bool {
		if count >= 0 && len(out) >= count {
			return false
		}
		out = append(out, VersionedKV{Key: key, Record: val.clone()})
		return true
	})
	return out, nil
}

// scanRefs is scan without the clones: it returns engine-owned record
// pointers, relying on the engine's copy-on-write discipline (every
// mutation publishes a fresh *VersionedRecord, never updating one in
// place), so the refs stay immutable snapshots after the lock drops.
// The cross-partition merge uses it to defer cloning until it knows
// which count records it will actually emit.
func (p *partition) scanRefs(table, startKey string, count int) ([]VersionedKV, error) {
	p.metrics.scans.Inc()
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return nil, ErrClosed
	}
	t := p.tables[table]
	if t == nil {
		return nil, nil
	}
	var out []VersionedKV
	t.ascend(startKey, func(key string, val *VersionedRecord) bool {
		if count >= 0 && len(out) >= count {
			return false
		}
		out = append(out, VersionedKV{Key: key, Record: val})
		return true
	})
	return out, nil
}

// forEach visits this partition's records of table in key order under
// the partition read lock (single-shard fast path of Store.ForEach).
func (p *partition) forEach(table string, fn func(key string, rec *VersionedRecord) bool) error {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return ErrClosed
	}
	t := p.tables[table]
	if t == nil {
		return nil
	}
	t.ascend("", fn)
	return nil
}

func (p *partition) len(table string) int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	t := p.tables[table]
	if t == nil {
		return 0
	}
	return t.size
}

func (p *partition) tableNames() []string {
	p.mu.RLock()
	defer p.mu.RUnlock()
	names := make([]string, 0, len(p.tables))
	for n := range p.tables {
		names = append(names, n)
	}
	return names
}

func (p *partition) sync() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosed
	}
	if p.wal == nil {
		return nil
	}
	return p.wal.sync()
}

func (p *partition) walSize() (int64, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return 0, ErrClosed
	}
	if p.wal == nil {
		return 0, nil
	}
	return p.wal.size()
}

func (p *partition) close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil
	}
	p.closed = true
	if p.wal != nil {
		return p.wal.close()
	}
	return nil
}
