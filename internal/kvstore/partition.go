package kvstore

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// partition is one shard of the store: a private set of B-trees (one
// per table) plus an optional WAL segment. The Store front routes
// every point operation to exactly one partition by key hash, so
// partitions never touch a shared lock or cache line on the hot path.
//
// Writers serialize on mu (which also orders WAL appends) and, after
// updating the copy-on-write tree, publish its root into snaps with
// one atomic store. Readers never take mu: they load the published
// snapshot and traverse it wait-free, returning engine-owned immutable
// records without cloning.
type partition struct {
	mu     sync.RWMutex
	tables map[string]*btree // writer-side handles; guarded by mu
	wal    *wal
	store  *Store // shared state: commit clock, retention horizon
	closed atomic.Bool

	// snaps is the read side: the atomically published per-table
	// snapshots the lock-free read path traverses.
	snaps atomic.Pointer[snapSet]

	// metrics holds this shard's private obs handles; the zero value
	// (nil handles) is inert. Written once in Store.instrument before
	// the store is shared, read lock-free afterwards.
	metrics partMetrics
}

func newPartition(w *wal, s *Store) *partition {
	p := &partition{tables: make(map[string]*btree), wal: w, store: s}
	p.snaps.Store(emptySnapSet)
	return p
}

// table returns the tree for name, creating it when absent. Caller
// must hold the write lock (or be in single-threaded open).
func (p *partition) table(name string) *btree {
	t, ok := p.tables[name]
	if !ok {
		t = newBTree()
		p.tables[name] = t
	}
	return t
}

// applyReplay applies one WAL record during recovery, bypassing
// version checks (the log records outcomes, not intents). Runs
// single-threaded during open, before the partition is published;
// Open calls publishAll afterwards to expose the recovered state.
// Frames replay in append order — commit-ts order per partition — so
// chaining each record onto the key's current head rebuilds version
// chains exactly. Legacy frames (pre-MVCC op codes) carry no commit
// ts and replay with ts 0; a legacy delete is a hard remove, matching
// the semantics it was written under.
func (p *partition) applyReplay(rec walRecord) error {
	tree := p.table(rec.Table)
	switch rec.Op {
	case walPut, walPutTS:
		stored := &VersionedRecord{Version: rec.Version, CommitTS: rec.CommitTS, Fields: rec.Fields}
		stored.link(tree.get(rec.Key))
		tree.put(rec.Key, stored)
	case walDeleteTS:
		tomb := &VersionedRecord{Version: rec.Version, CommitTS: rec.CommitTS, deleted: true}
		tomb.link(tree.get(rec.Key))
		tree.put(rec.Key, tomb)
	case walDelete:
		tree.delete(rec.Key)
	default:
		return fmt.Errorf("unknown WAL op %d", rec.Op)
	}
	return nil
}

func (p *partition) isClosed() bool {
	return p.closed.Load()
}

// get is the wait-free point read: no lock, no clone, zero heap
// allocations on the hit path. The returned record is an engine-owned
// immutable snapshot that callers must not mutate (Clone first).
func (p *partition) get(table, key string) (*VersionedRecord, error) {
	p.metrics.gets.Inc()
	if p.closed.Load() {
		return nil, ErrClosed
	}
	if ts := p.tableSnap(table); ts != nil {
		if v := ts.get(key); v != nil && !v.deleted {
			return v, nil
		}
	}
	return nil, fmt.Errorf("%w: %s/%s", ErrNotFound, table, key)
}

// getAsOf is the time-travel point read. The published root is
// collected under a brief read lock — any writer that already drew a
// commit ts ≤ ts publishes before releasing the partition, so a
// previously drawn SnapshotTS is a stable cut — then the chain walk
// itself is lock-free.
func (p *partition) getAsOf(table, key string, ts int64) (*VersionedRecord, error) {
	p.metrics.gets.Inc()
	if p.closed.Load() {
		return nil, ErrClosed
	}
	p.mu.RLock()
	snap := p.tableSnap(table)
	p.mu.RUnlock()
	if snap != nil {
		if v := asOf(snap.get(key), ts); v != nil {
			return v, nil
		}
	}
	return nil, fmt.Errorf("%w: %s/%s as of %d", ErrNotFound, table, key, ts)
}

// each calls fn for every index of idx, or for 0..n-1 when idx is nil
// (the single-partition fast path, which skips building index lists).
func each(n int, idx []int, fn func(i int)) {
	if idx == nil {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	for _, i := range idx {
		fn(i)
	}
}

func errBadMutOp(op MutOp) error {
	return fmt.Errorf("kvstore: unknown mutation op %d", op)
}

// putIfVersion is the conditional-put core. When the WAL is in
// group-commit + sync mode the durability wait happens after the
// partition lock is released, so other writers proceed during the
// window — that interleaving is the whole point of group commit. The
// WAL pointer is captured under the lock because compact swaps p.wal
// while holding it; waiting on the captured object stays correct
// since the old WAL's close performs a final group sync that wakes
// its waiters.
//
// The new root is published (one atomic store) before the lock drops,
// matching the visibility the locked engine always had: a mutation is
// readable as soon as its writer releases the partition, and durable
// once the group commit covering its frame completes.
func (p *partition) putIfVersion(table, key string, fields map[string][]byte, expect uint64) (uint64, error) {
	p.metrics.puts.Inc()
	p.mu.Lock()
	if p.closed.Load() {
		p.mu.Unlock()
		return 0, ErrClosed
	}
	w := p.wal
	ver, seq, err := p.putLocked(w, table, key, fields, expect, false)
	if err == nil {
		p.publishLocked(table, p.tables[table])
	}
	p.mu.Unlock()
	if err != nil {
		return 0, err
	}
	if seq != 0 {
		if err := w.waitDurable(seq); err != nil {
			return 0, err
		}
	}
	return ver, nil
}

func (p *partition) update(table, key string, fields map[string][]byte) (uint64, error) {
	p.metrics.puts.Inc()
	p.mu.Lock()
	if p.closed.Load() {
		p.mu.Unlock()
		return 0, ErrClosed
	}
	w := p.wal // captured under p.mu: compact may swap p.wal after unlock
	ver, seq, err := p.putLocked(w, table, key, fields, AnyVersion, true)
	if err == nil {
		p.publishLocked(table, p.tables[table])
	}
	p.mu.Unlock()
	if err != nil {
		return 0, err
	}
	if seq != 0 {
		if err := w.waitDurable(seq); err != nil {
			return 0, err
		}
	}
	return ver, nil
}

// putLocked is the put/update core, requiring p.mu (write). With
// merge set it merges fields into the existing record (which must
// exist); otherwise it evaluates expect and stores a full replacement.
// Either way it builds a fresh *VersionedRecord — published records
// are immutable, which is what lets the read path hand them out
// without cloning. The new record draws the store-wide commit ts
// under the lock and is linked onto the key's existing chain (a
// tombstone head counts as "absent" for expect checks but stays in
// the chain, so as-of reads can still see through it). It returns the
// WAL sequence the caller must wait on for durability (0 = none). The
// WAL handle is passed in because callers capture p.wal under the
// lock and wait on that same object after unlocking. The caller
// publishes the new root.
func (p *partition) putLocked(w *wal, table, key string, fields map[string][]byte, expect uint64, merge bool) (uint64, uint64, error) {
	t := p.table(table)
	cur := t.get(key)
	live := cur
	if cur != nil && cur.deleted {
		live = nil
	}
	var stored *VersionedRecord
	if merge {
		if live == nil {
			return 0, 0, fmt.Errorf("%w: %s/%s", ErrNotFound, table, key)
		}
		stored = live.clone()
		stored.Version = cur.Version + 1
		for f, b := range fields {
			stored.Fields[f] = append([]byte(nil), b...)
		}
	} else {
		switch expect {
		case AnyVersion:
		case MustNotExist:
			if live != nil {
				return 0, 0, fmt.Errorf("%w: %s/%s", ErrExists, table, key)
			}
		default:
			if live == nil {
				return 0, 0, fmt.Errorf("%w: %s/%s not found, expected version %d", ErrVersionMismatch, table, key, expect)
			}
			if live.Version != expect {
				return 0, 0, fmt.Errorf("%w: %s/%s at version %d, expected %d", ErrVersionMismatch, table, key, live.Version, expect)
			}
		}
		var next uint64 = 1
		if cur != nil {
			next = cur.Version + 1
		}
		stored = &VersionedRecord{Version: next, Fields: make(map[string][]byte, len(fields))}
		for f, b := range fields {
			stored.Fields[f] = append([]byte(nil), b...)
		}
	}
	stored.CommitTS = p.store.nextTS()
	stored.link(cur)
	var seq uint64
	if w != nil {
		var err error
		if seq, err = w.append(walRecord{Op: walPutTS, Table: table, Key: key, Version: stored.Version, CommitTS: stored.CommitTS, Fields: stored.Fields}); err != nil {
			return 0, 0, err
		}
	}
	t.put(key, stored)
	p.retireLocked(stored)
	return stored.Version, seq, nil
}

// retireLocked applies the retention window inline on the write path:
// if the new head's chain reaches below the reclaim horizon, the
// chain is cut after the newest version ≤ the horizon. The tail-ts
// hint makes the common case (nothing expired) a single comparison,
// keeping hot-key writes O(live chain). Requires p.mu; stored is not
// yet published, so its bookkeeping fields may still be rewritten.
func (p *partition) retireLocked(stored *VersionedRecord) {
	cut := p.store.cutTS(stored.CommitTS)
	if stored.tailTS <= cut {
		if n := cutChainAt(stored, cut); n > 0 {
			p.metrics.vacuumed.Add(n)
		}
		// Recompute the hints from the (possibly shortened) chain.
		depth := uint32(1)
		tail := stored
		for next := tail.prev.Load(); next != nil; next = tail.prev.Load() {
			tail = next
			depth++
		}
		stored.tailTS = tail.CommitTS
		stored.chainLen = depth
	}
	p.metrics.chainLen.Observe(float64(stored.chainLen))
}

func (p *partition) deleteIfVersion(table, key string, expect uint64) error {
	p.metrics.deletes.Inc()
	p.mu.Lock()
	if p.closed.Load() {
		p.mu.Unlock()
		return ErrClosed
	}
	w := p.wal // captured under p.mu: compact may swap p.wal after unlock
	seq, err := p.deleteLocked(w, table, key, expect)
	if err == nil {
		p.publishLocked(table, p.tables[table])
	}
	p.mu.Unlock()
	if err != nil {
		return err
	}
	if seq != 0 {
		if err := w.waitDurable(seq); err != nil {
			return err
		}
	}
	return nil
}

// deleteLocked is the delete core, requiring p.mu (write). A delete
// writes a tombstone version at the head of the chain — the key stays
// in the tree so as-of reads still see pre-delete versions — and the
// live count drops by one (btree.put accounts by liveness). The key
// itself is removed by Vacuum once the tombstone ages past the
// retention horizon. It returns the WAL sequence the caller must wait
// on for durability (0 = none). The caller publishes the new root.
func (p *partition) deleteLocked(w *wal, table, key string, expect uint64) (uint64, error) {
	t := p.table(table)
	cur := t.get(key)
	if cur == nil || cur.deleted {
		return 0, fmt.Errorf("%w: %s/%s", ErrNotFound, table, key)
	}
	if expect != AnyVersion && cur.Version != expect {
		return 0, fmt.Errorf("%w: %s/%s at version %d, expected %d", ErrVersionMismatch, table, key, cur.Version, expect)
	}
	tomb := &VersionedRecord{Version: cur.Version + 1, CommitTS: p.store.nextTS(), deleted: true}
	tomb.link(cur)
	var seq uint64
	if w != nil {
		var err error
		if seq, err = w.append(walRecord{Op: walDeleteTS, Table: table, Key: key, Version: tomb.Version, CommitTS: tomb.CommitTS}); err != nil {
			return 0, err
		}
	}
	t.put(key, tomb)
	p.retireLocked(tomb)
	return seq, nil
}

// scan returns up to count records with key ≥ startKey from this
// partition, in key order, traversing one published snapshot without
// locks or cloning. A count < 0 means no limit. The returned records
// are engine-owned immutable snapshots.
func (p *partition) scan(table, startKey string, count int) ([]VersionedKV, error) {
	p.metrics.scans.Inc()
	if p.closed.Load() {
		return nil, ErrClosed
	}
	ts := p.tableSnap(table)
	if ts == nil {
		return nil, nil
	}
	out := scanSnap(ts, startKey, count)
	p.metrics.snapScanLen.Observe(float64(len(out)))
	return out, nil
}

// scanSnap collects up to count live records with key ≥ startKey from
// one immutable snapshot (count < 0 = no limit); tombstone heads are
// skipped — a deleted key is invisible at the head.
func scanSnap(ts *treeSnapshot, startKey string, count int) []VersionedKV {
	var out []VersionedKV
	ts.ascend(startKey, func(key string, val *VersionedRecord) bool {
		if count >= 0 && len(out) >= count {
			return false
		}
		if val.deleted {
			return true
		}
		out = append(out, VersionedKV{Key: key, Record: val})
		return true
	})
	return out
}

// scanSnapAsOf collects up to count records as they stood at ts:
// every key resolves through its chain to the newest version ≤ ts,
// with tombstones (and keys born after ts) skipped.
func scanSnapAsOf(tsnap *treeSnapshot, startKey string, count int, ts int64) []VersionedKV {
	var out []VersionedKV
	tsnap.ascend(startKey, func(key string, val *VersionedRecord) bool {
		if count >= 0 && len(out) >= count {
			return false
		}
		if v := asOf(val, ts); v != nil {
			out = append(out, VersionedKV{Key: key, Record: v})
		}
		return true
	})
	return out
}

// scanSnapVersionsAsOf is scanSnapAsOf with tombstones kept: each key
// resolves to its newest version ≤ ts — delete versions included, so
// callers replicating state (the migration copy) see deletes instead
// of silently losing them. Keys born after ts are still skipped.
func scanSnapVersionsAsOf(tsnap *treeSnapshot, startKey string, count int, ts int64) []VersionedKV {
	var out []VersionedKV
	tsnap.ascend(startKey, func(key string, val *VersionedRecord) bool {
		if count >= 0 && len(out) >= count {
			return false
		}
		if v := val.AsOf(ts); v != nil {
			out = append(out, VersionedKV{Key: key, Record: v})
		}
		return true
	})
	return out
}

// forEach visits this partition's records of table in key order over
// one published snapshot (single-shard fast path of Store.ForEach) —
// the whole visit is one atomic point-in-time view and never blocks
// or is blocked by writers.
func (p *partition) forEach(table string, fn func(key string, rec *VersionedRecord) bool) error {
	if p.closed.Load() {
		return ErrClosed
	}
	ts := p.tableSnap(table)
	if ts == nil {
		return nil
	}
	ts.ascend("", func(key string, rec *VersionedRecord) bool {
		if rec.deleted {
			return true
		}
		return fn(key, rec)
	})
	return nil
}

func (p *partition) len(table string) int {
	ts := p.tableSnap(table)
	if ts == nil {
		return 0
	}
	return ts.size
}

func (p *partition) tableNames() []string {
	set := p.snaps.Load()
	names := make([]string, 0, len(set.tables))
	for n := range set.tables {
		names = append(names, n)
	}
	return names
}

func (p *partition) sync() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed.Load() {
		return ErrClosed
	}
	if p.wal == nil {
		return nil
	}
	return p.wal.sync()
}

func (p *partition) walSize() (int64, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed.Load() {
		return 0, ErrClosed
	}
	if p.wal == nil {
		return 0, nil
	}
	return p.wal.size()
}

func (p *partition) close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed.Load() {
		return nil
	}
	p.closed.Store(true)
	if p.wal != nil {
		return p.wal.close()
	}
	return nil
}
