// Package kvstore implements the embedded key-value storage engine
// used as the local NoSQL substrate of the reproduction — the analog
// of the WiredTiger store (fronted by HTTP) that the paper's Tier 6
// experiments run against.
//
// The engine provides:
//
//   - an ordered index (an in-memory B-tree) supporting point gets,
//     range scans and full iteration (the CEW validation phase scans
//     every record);
//   - per-record versions with conditional put / delete (test-and-set
//     on the version, the ETag idiom of WAS and GCS) — the primitive
//     the client-coordinated transaction library builds on;
//   - an optional write-ahead log for durability with replay on open.
//
// Operations on single keys are linearizable. The store offers no
// multi-key transactions by itself; that is the transaction library's
// job (internal/txn).
package kvstore

import "strings"

// btreeMinDegree is the B-tree minimum degree t: every node except
// the root holds between t-1 and 2t-1 keys.
const btreeMinDegree = 32

// item is one key/value pair stored in the tree.
type item struct {
	key string
	val *VersionedRecord
}

// node is one B-tree node. Leaf nodes have no children.
type node struct {
	items    []item
	children []*node
}

func (n *node) leaf() bool { return len(n.children) == 0 }

// find returns the position of key in n.items, or the child index to
// descend into, and whether the key was found at that position.
func (n *node) find(key string) (int, bool) {
	lo, hi := 0, len(n.items)
	for lo < hi {
		mid := (lo + hi) / 2
		if n.items[mid].key < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(n.items) && n.items[lo].key == key {
		return lo, true
	}
	return lo, false
}

// btree is a classic CLRS B-tree mapping string keys to records. It
// is not internally synchronized; the Store serializes access.
type btree struct {
	root *node
	size int
}

func newBTree() *btree {
	return &btree{root: &node{}}
}

// get returns the value stored under key, or nil.
func (t *btree) get(key string) *VersionedRecord {
	n := t.root
	for {
		i, ok := n.find(key)
		if ok {
			return n.items[i].val
		}
		if n.leaf() {
			return nil
		}
		n = n.children[i]
	}
}

// put stores val under key, replacing any existing value. It reports
// whether a new key was inserted.
func (t *btree) put(key string, val *VersionedRecord) bool {
	if len(t.root.items) == 2*btreeMinDegree-1 {
		old := t.root
		t.root = &node{children: []*node{old}}
		t.root.splitChild(0)
	}
	inserted := t.root.insertNonFull(key, val)
	if inserted {
		t.size++
	}
	return inserted
}

// splitChild splits the full child at index i of n, moving its median
// item up into n.
func (n *node) splitChild(i int) {
	child := n.children[i]
	t := btreeMinDegree
	median := child.items[t-1]
	right := &node{
		items: append([]item(nil), child.items[t:]...),
	}
	if !child.leaf() {
		right.children = append([]*node(nil), child.children[t:]...)
		child.children = child.children[:t]
	}
	child.items = child.items[:t-1]

	n.items = append(n.items, item{})
	copy(n.items[i+1:], n.items[i:])
	n.items[i] = median
	n.children = append(n.children, nil)
	copy(n.children[i+2:], n.children[i+1:])
	n.children[i+1] = right
}

// insertNonFull inserts into a node known not to be full; it reports
// whether the key is new.
func (n *node) insertNonFull(key string, val *VersionedRecord) bool {
	for {
		i, ok := n.find(key)
		if ok {
			n.items[i].val = val
			return false
		}
		if n.leaf() {
			n.items = append(n.items, item{})
			copy(n.items[i+1:], n.items[i:])
			n.items[i] = item{key: key, val: val}
			return true
		}
		if len(n.children[i].items) == 2*btreeMinDegree-1 {
			n.splitChild(i)
			if key == n.items[i].key {
				n.items[i].val = val
				return false
			}
			if key > n.items[i].key {
				i++
			}
		}
		n = n.children[i]
	}
}

// delete removes key and reports whether it was present.
func (t *btree) delete(key string) bool {
	removed := t.root.remove(key)
	if len(t.root.items) == 0 && !t.root.leaf() {
		t.root = t.root.children[0]
	}
	if removed {
		t.size--
	}
	return removed
}

// remove implements CLRS B-tree deletion; on entry n has at least t
// items unless it is the root.
func (n *node) remove(key string) bool {
	t := btreeMinDegree
	i, found := n.find(key)
	if found {
		if n.leaf() {
			// Case 1: delete from leaf directly.
			n.items = append(n.items[:i], n.items[i+1:]...)
			return true
		}
		// Case 2: key in internal node.
		if len(n.children[i].items) >= t {
			// 2a: replace with predecessor from the left subtree.
			pred := n.children[i].maxItem()
			n.items[i] = pred
			return n.children[i].remove(pred.key)
		}
		if len(n.children[i+1].items) >= t {
			// 2b: replace with successor from the right subtree.
			succ := n.children[i+1].minItem()
			n.items[i] = succ
			return n.children[i+1].remove(succ.key)
		}
		// 2c: merge the two t-1 children around the key, recurse.
		n.mergeChildren(i)
		return n.children[i].remove(key)
	}
	if n.leaf() {
		return false
	}
	// Case 3: key (if present) lives in subtree i; ensure that child
	// has ≥ t items before descending.
	if len(n.children[i].items) < t {
		i = n.growChild(i)
	}
	return n.children[i].remove(key)
}

// growChild ensures child i has at least t items by borrowing from a
// sibling or merging; it returns the (possibly shifted) child index
// to descend into.
func (n *node) growChild(i int) int {
	t := btreeMinDegree
	switch {
	case i > 0 && len(n.children[i-1].items) >= t:
		// 3a-left: rotate an item from the left sibling through n.
		child, left := n.children[i], n.children[i-1]
		child.items = append(child.items, item{})
		copy(child.items[1:], child.items)
		child.items[0] = n.items[i-1]
		n.items[i-1] = left.items[len(left.items)-1]
		left.items = left.items[:len(left.items)-1]
		if !left.leaf() {
			borrowed := left.children[len(left.children)-1]
			left.children = left.children[:len(left.children)-1]
			child.children = append(child.children, nil)
			copy(child.children[1:], child.children)
			child.children[0] = borrowed
		}
		return i
	case i < len(n.children)-1 && len(n.children[i+1].items) >= t:
		// 3a-right: rotate an item from the right sibling through n.
		child, right := n.children[i], n.children[i+1]
		child.items = append(child.items, n.items[i])
		n.items[i] = right.items[0]
		right.items = append(right.items[:0], right.items[1:]...)
		if !right.leaf() {
			child.children = append(child.children, right.children[0])
			right.children = append(right.children[:0], right.children[1:]...)
		}
		return i
	case i > 0:
		// 3b: merge with the left sibling.
		n.mergeChildren(i - 1)
		return i - 1
	default:
		// 3b: merge with the right sibling.
		n.mergeChildren(i)
		return i
	}
}

// mergeChildren merges child i, item i and child i+1 into one node.
func (n *node) mergeChildren(i int) {
	left, right := n.children[i], n.children[i+1]
	left.items = append(left.items, n.items[i])
	left.items = append(left.items, right.items...)
	left.children = append(left.children, right.children...)
	n.items = append(n.items[:i], n.items[i+1:]...)
	n.children = append(n.children[:i+1], n.children[i+2:]...)
}

func (n *node) minItem() item {
	for !n.leaf() {
		n = n.children[0]
	}
	return n.items[0]
}

func (n *node) maxItem() item {
	for !n.leaf() {
		n = n.children[len(n.children)-1]
	}
	return n.items[len(n.items)-1]
}

// ascend visits every item with key ≥ start in order, until fn
// returns false.
func (t *btree) ascend(start string, fn func(key string, val *VersionedRecord) bool) {
	t.root.ascend(start, fn)
}

func (n *node) ascend(start string, fn func(string, *VersionedRecord) bool) bool {
	i, _ := n.find(start)
	for ; i < len(n.items); i++ {
		if !n.leaf() && !n.children[i].ascend(start, fn) {
			return false
		}
		if n.items[i].key >= start && !fn(n.items[i].key, n.items[i].val) {
			return false
		}
	}
	if !n.leaf() {
		return n.children[len(n.children)-1].ascend(start, fn)
	}
	return true
}

// check verifies the B-tree structural invariants (used by tests):
// sorted keys, occupancy bounds, uniform depth. It returns a
// description of the first violation, or "".
func (t *btree) check() string {
	depth := -1
	var walk func(n *node, d int, lo, hi string, isRoot bool) string
	walk = func(n *node, d int, lo, hi string, isRoot bool) string {
		tt := btreeMinDegree
		if !isRoot && len(n.items) < tt-1 {
			return "underfull node"
		}
		if len(n.items) > 2*tt-1 {
			return "overfull node"
		}
		for i := 0; i < len(n.items); i++ {
			k := n.items[i].key
			if i > 0 && n.items[i-1].key >= k {
				return "unsorted items"
			}
			if lo != "" && k <= lo {
				return "item below subtree bound"
			}
			if hi != "" && k >= hi {
				return "item above subtree bound"
			}
		}
		if n.leaf() {
			if depth == -1 {
				depth = d
			} else if depth != d {
				return "leaves at different depths"
			}
			return ""
		}
		if len(n.children) != len(n.items)+1 {
			return "child count mismatch"
		}
		for i, c := range n.children {
			clo, chi := lo, hi
			if i > 0 {
				clo = n.items[i-1].key
			}
			if i < len(n.items) {
				chi = n.items[i].key
			}
			if msg := walk(c, d+1, clo, chi, false); msg != "" {
				return msg
			}
		}
		return ""
	}
	return walk(t.root, 0, "", "", true)
}

// compareKeys orders keys the way the store does (plain lexicographic
// byte order); exposed for documentation via tests.
func compareKeys(a, b string) int { return strings.Compare(a, b) }
