// Package kvstore implements the embedded key-value storage engine
// used as the local NoSQL substrate of the reproduction — the analog
// of the WiredTiger store (fronted by HTTP) that the paper's Tier 6
// experiments run against.
//
// The engine provides:
//
//   - an ordered index (an in-memory B-tree) supporting point gets,
//     range scans and full iteration (the CEW validation phase scans
//     every record);
//   - per-record versions with conditional put / delete (test-and-set
//     on the version, the ETag idiom of WAS and GCS) — the primitive
//     the client-coordinated transaction library builds on;
//   - an optional write-ahead log for durability with replay on open.
//
// Operations on single keys are linearizable. The store offers no
// multi-key transactions by itself; that is the transaction library's
// job (internal/txn).
package kvstore

import "strings"

// btreeMinDegree is the B-tree minimum degree t: every node except
// the root holds between t-1 and 2t-1 keys.
const btreeMinDegree = 32

// item is one key/value pair stored in the tree.
type item struct {
	key string
	val *VersionedRecord
}

// node is one B-tree node. Leaf nodes have no children.
type node struct {
	items    []item
	children []*node
}

func (n *node) leaf() bool { return len(n.children) == 0 }

// find returns the position of key in n.items, or the child index to
// descend into, and whether the key was found at that position.
func (n *node) find(key string) (int, bool) {
	lo, hi := 0, len(n.items)
	for lo < hi {
		mid := (lo + hi) / 2
		if n.items[mid].key < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(n.items) && n.items[lo].key == key {
		return lo, true
	}
	return lo, false
}

// btree is a CLRS B-tree mapping string keys to records, with a
// copy-on-write write path: put and delete clone every node they touch
// (root to leaf) instead of mutating in place, so any previously
// obtained root pointer remains a valid, immutable snapshot of the
// tree forever. The handle itself is not synchronized — the partition
// serializes writers — but a *node taken from t.root may be traversed
// concurrently with writes without any lock; superseded nodes are
// reclaimed by Go's garbage collector, which is why no epoch or
// hazard-pointer machinery is needed.
type btree struct {
	root *node
	size int
}

// clone shallow-copies a node: fresh item and child slices, shared
// grandchildren. A cloned node is "owned" by the writer and may be
// edited in place; everything it still points to is shared and must
// not be.
func (n *node) clone() *node {
	c := &node{items: append([]item(nil), n.items...)}
	if len(n.children) > 0 {
		c.children = append([]*node(nil), n.children...)
	}
	return c
}

// depth returns the number of levels in the tree (≥ 1). Because every
// write clones one root-to-leaf path, it is also the per-write
// retired-node estimate exported by the snapshot metrics.
func (t *btree) depth() int {
	d := 1
	for n := t.root; !n.leaf(); n = n.children[0] {
		d++
	}
	return d
}

func newBTree() *btree {
	return &btree{root: &node{}}
}

// get returns the value stored under key, or nil.
func (t *btree) get(key string) *VersionedRecord {
	n := t.root
	for {
		i, ok := n.find(key)
		if ok {
			return n.items[i].val
		}
		if n.leaf() {
			return nil
		}
		n = n.children[i]
	}
}

// live counts a record toward the tree's size: tombstone heads keep
// the key in the index (for time-travel reads through the chain) but
// are not live records.
func live(v *VersionedRecord) int {
	if v == nil || v.deleted {
		return 0
	}
	return 1
}

// put stores val under key, replacing any existing value, and returns
// the value it replaced (nil when the key is new). The size tracks
// live records only, so installing or replacing tombstone heads
// adjusts it by the liveness delta. Copy-on-write: the nodes along
// the insertion path are cloned and the new root installed in t.root;
// no node reachable from the previous root is modified.
func (t *btree) put(key string, val *VersionedRecord) *VersionedRecord {
	var root *node
	if len(t.root.items) == 2*btreeMinDegree-1 {
		root = &node{children: []*node{t.root}}
		root.splitOwnedChild(0)
	} else {
		root = t.root.clone()
	}
	old := root.insertNonFull(key, val)
	t.root = root
	t.size += live(val) - live(old)
	return old
}

// splitOwnedChild splits the full (shared) child at index i of the
// owned node n, building a fresh left and right half instead of
// truncating the original, and moving the median item up into n. Both
// halves are owned by the writer afterwards.
func (n *node) splitOwnedChild(i int) {
	child := n.children[i]
	t := btreeMinDegree
	median := child.items[t-1]
	left := &node{items: append([]item(nil), child.items[:t-1]...)}
	right := &node{items: append([]item(nil), child.items[t:]...)}
	if !child.leaf() {
		left.children = append([]*node(nil), child.children[:t]...)
		right.children = append([]*node(nil), child.children[t:]...)
	}
	n.children[i] = left
	n.items = append(n.items, item{})
	copy(n.items[i+1:], n.items[i:])
	n.items[i] = median
	n.children = append(n.children, nil)
	copy(n.children[i+2:], n.children[i+1:])
	n.children[i+1] = right
}

// insertNonFull inserts into an owned node known not to be full; it
// returns the value it replaced (nil when the key is new). Shared
// children are cloned (or, when full, split into fresh halves) before
// descending, so the writer only ever edits nodes it owns.
func (n *node) insertNonFull(key string, val *VersionedRecord) *VersionedRecord {
	for {
		i, ok := n.find(key)
		if ok {
			old := n.items[i].val
			n.items[i].val = val
			return old
		}
		if n.leaf() {
			n.items = append(n.items, item{})
			copy(n.items[i+1:], n.items[i:])
			n.items[i] = item{key: key, val: val}
			return nil
		}
		if len(n.children[i].items) == 2*btreeMinDegree-1 {
			n.splitOwnedChild(i)
			if key == n.items[i].key {
				old := n.items[i].val
				n.items[i].val = val
				return old
			}
			if key > n.items[i].key {
				i++
			}
			// The split halves are freshly built, hence owned.
			n = n.children[i]
			continue
		}
		c := n.children[i].clone()
		n.children[i] = c
		n = c
	}
}

// delete hard-removes key (chain and all) and reports whether it was
// present — used by legacy WAL replay and by Vacuum's purge of
// expired tombstoned keys; the live write path deletes by writing a
// tombstone head instead. Like put it is copy-on-write: the deletion
// path is cloned and the new root installed in t.root, leaving every
// previous root a valid snapshot.
func (t *btree) delete(key string) bool {
	old := t.get(key)
	if old == nil {
		return false
	}
	root := t.root.clone()
	root.remove(key)
	if len(root.items) == 0 && !root.leaf() {
		root = root.children[0]
	}
	t.root = root
	t.size -= live(old)
	return true
}

// remove implements CLRS B-tree deletion over an owned node; on entry
// n has at least t items unless it is the root. Children are cloned
// (or rebuilt fresh by the borrow/merge helpers) before being edited
// or descended into.
func (n *node) remove(key string) bool {
	t := btreeMinDegree
	i, found := n.find(key)
	if found {
		if n.leaf() {
			// Case 1: delete from leaf directly (owned slices).
			n.items = append(n.items[:i], n.items[i+1:]...)
			return true
		}
		// Case 2: key in internal node.
		if len(n.children[i].items) >= t {
			// 2a: replace with predecessor from the left subtree.
			pred := n.children[i].maxItem()
			n.items[i] = pred
			c := n.children[i].clone()
			n.children[i] = c
			return c.remove(pred.key)
		}
		if len(n.children[i+1].items) >= t {
			// 2b: replace with successor from the right subtree.
			succ := n.children[i+1].minItem()
			n.items[i] = succ
			c := n.children[i+1].clone()
			n.children[i+1] = c
			return c.remove(succ.key)
		}
		// 2c: merge the two t-1 children around the key, recurse. The
		// merged node is freshly built, hence owned.
		n.mergeOwnedChildren(i)
		return n.children[i].remove(key)
	}
	if n.leaf() {
		return false
	}
	// Case 3: key (if present) lives in subtree i; ensure that child
	// has ≥ t items before descending.
	if len(n.children[i].items) < t {
		i = n.growOwnedChild(i)
		// growOwnedChild leaves children[i] freshly built (owned).
		return n.children[i].remove(key)
	}
	c := n.children[i].clone()
	n.children[i] = c
	return c.remove(key)
}

// growOwnedChild ensures child i has at least t items by borrowing
// from a sibling or merging; it returns the (possibly shifted) child
// index to descend into. The child at the returned index — and any
// sibling the rotation shrank — are rebuilt as fresh nodes; the shared
// originals are never modified.
func (n *node) growOwnedChild(i int) int {
	t := btreeMinDegree
	switch {
	case i > 0 && len(n.children[i-1].items) >= t:
		// 3a-left: rotate an item from the left sibling through n.
		oldChild, oldLeft := n.children[i], n.children[i-1]
		child := &node{items: make([]item, 0, len(oldChild.items)+1)}
		child.items = append(child.items, n.items[i-1])
		child.items = append(child.items, oldChild.items...)
		left := &node{items: append([]item(nil), oldLeft.items[:len(oldLeft.items)-1]...)}
		if !oldLeft.leaf() {
			child.children = make([]*node, 0, len(oldChild.children)+1)
			child.children = append(child.children, oldLeft.children[len(oldLeft.children)-1])
			child.children = append(child.children, oldChild.children...)
			left.children = append([]*node(nil), oldLeft.children[:len(oldLeft.children)-1]...)
		}
		n.items[i-1] = oldLeft.items[len(oldLeft.items)-1]
		n.children[i-1] = left
		n.children[i] = child
		return i
	case i < len(n.children)-1 && len(n.children[i+1].items) >= t:
		// 3a-right: rotate an item from the right sibling through n.
		oldChild, oldRight := n.children[i], n.children[i+1]
		child := &node{items: make([]item, 0, len(oldChild.items)+1)}
		child.items = append(child.items, oldChild.items...)
		child.items = append(child.items, n.items[i])
		right := &node{items: append([]item(nil), oldRight.items[1:]...)}
		if !oldRight.leaf() {
			child.children = make([]*node, 0, len(oldChild.children)+1)
			child.children = append(child.children, oldChild.children...)
			child.children = append(child.children, oldRight.children[0])
			right.children = append([]*node(nil), oldRight.children[1:]...)
		}
		n.items[i] = oldRight.items[0]
		n.children[i] = child
		n.children[i+1] = right
		return i
	case i > 0:
		// 3b: merge with the left sibling.
		n.mergeOwnedChildren(i - 1)
		return i - 1
	default:
		// 3b: merge with the right sibling.
		n.mergeOwnedChildren(i)
		return i
	}
}

// mergeOwnedChildren merges child i, item i and child i+1 of the owned
// node n into one freshly built node, leaving the shared originals
// untouched.
func (n *node) mergeOwnedChildren(i int) {
	left, right := n.children[i], n.children[i+1]
	m := &node{items: make([]item, 0, len(left.items)+1+len(right.items))}
	m.items = append(m.items, left.items...)
	m.items = append(m.items, n.items[i])
	m.items = append(m.items, right.items...)
	if !left.leaf() {
		m.children = make([]*node, 0, len(left.children)+len(right.children))
		m.children = append(m.children, left.children...)
		m.children = append(m.children, right.children...)
	}
	n.items = append(n.items[:i], n.items[i+1:]...)
	n.children[i] = m
	n.children = append(n.children[:i+1], n.children[i+2:]...)
}

func (n *node) minItem() item {
	for !n.leaf() {
		n = n.children[0]
	}
	return n.items[0]
}

func (n *node) maxItem() item {
	for !n.leaf() {
		n = n.children[len(n.children)-1]
	}
	return n.items[len(n.items)-1]
}

// ascend visits every item with key ≥ start in order, until fn
// returns false.
func (t *btree) ascend(start string, fn func(key string, val *VersionedRecord) bool) {
	t.root.ascend(start, fn)
}

func (n *node) ascend(start string, fn func(string, *VersionedRecord) bool) bool {
	i, _ := n.find(start)
	for ; i < len(n.items); i++ {
		if !n.leaf() && !n.children[i].ascend(start, fn) {
			return false
		}
		if n.items[i].key >= start && !fn(n.items[i].key, n.items[i].val) {
			return false
		}
	}
	if !n.leaf() {
		return n.children[len(n.children)-1].ascend(start, fn)
	}
	return true
}

// check verifies the B-tree structural invariants (used by tests):
// sorted keys, occupancy bounds, uniform depth. It returns a
// description of the first violation, or "".
func (t *btree) check() string {
	depth := -1
	var walk func(n *node, d int, lo, hi string, isRoot bool) string
	walk = func(n *node, d int, lo, hi string, isRoot bool) string {
		tt := btreeMinDegree
		if !isRoot && len(n.items) < tt-1 {
			return "underfull node"
		}
		if len(n.items) > 2*tt-1 {
			return "overfull node"
		}
		for i := 0; i < len(n.items); i++ {
			k := n.items[i].key
			if i > 0 && n.items[i-1].key >= k {
				return "unsorted items"
			}
			if lo != "" && k <= lo {
				return "item below subtree bound"
			}
			if hi != "" && k >= hi {
				return "item above subtree bound"
			}
		}
		if n.leaf() {
			if depth == -1 {
				depth = d
			} else if depth != d {
				return "leaves at different depths"
			}
			return ""
		}
		if len(n.children) != len(n.items)+1 {
			return "child count mismatch"
		}
		for i, c := range n.children {
			clo, chi := lo, hi
			if i > 0 {
				clo = n.items[i-1].key
			}
			if i < len(n.items) {
				chi = n.items[i].key
			}
			if msg := walk(c, d+1, clo, chi, false); msg != "" {
				return msg
			}
		}
		return ""
	}
	return walk(t.root, 0, "", "", true)
}

// compareKeys orders keys the way the store does (plain lexicographic
// byte order); exposed for documentation via tests.
func compareKeys(a, b string) int { return strings.Compare(a, b) }
