package kvstore

import "sync/atomic"

// Lock-free snapshot read path. Writers maintain the per-table btree
// handles under the partition mutex exactly as before, but because the
// write path is copy-on-write (see btree.go), a root pointer taken at
// any instant is an immutable point-in-time snapshot of the whole
// table. After every committed mutation the writer publishes the new
// root with one atomic store; Get, BatchGet, Scan and ForEach traverse
// the published snapshot with no lock and no record cloning. Go's
// garbage collector reclaims superseded nodes once the last reader
// drops them — the reason this design needs no epoch or hazard-pointer
// reclamation machinery.

// treeSnapshot is one published point-in-time view of a table: an
// immutable B-tree root plus the record count at publication time.
type treeSnapshot struct {
	root *node
	size int
}

// emptySnap is the snapshot readers see for a table that exists but
// has never been published with content (so loads never return nil
// through a live slot).
var emptySnap = &treeSnapshot{root: &node{}}

// get returns the record stored under key in this snapshot, or nil.
func (ts *treeSnapshot) get(key string) *VersionedRecord {
	n := ts.root
	for {
		i, ok := n.find(key)
		if ok {
			return n.items[i].val
		}
		if n.leaf() {
			return nil
		}
		n = n.children[i]
	}
}

// ascend visits every item of the snapshot with key ≥ start in order,
// until fn returns false.
func (ts *treeSnapshot) ascend(start string, fn func(key string, val *VersionedRecord) bool) {
	ts.root.ascend(start, fn)
}

// tableSlot holds one table's atomically published snapshot. Slots are
// created once per table and never removed, so readers can hold a slot
// pointer across root swaps.
type tableSlot struct {
	snap atomic.Pointer[treeSnapshot]
}

// snapSet is a partition's read-side table index. The map itself is
// immutable — creating a table copies it into a fresh snapSet — so
// readers index it without any lock; only the slot contents change.
type snapSet struct {
	tables map[string]*tableSlot
}

var emptySnapSet = &snapSet{tables: map[string]*tableSlot{}}

// tableSnap returns the current snapshot of table, or nil when the
// table has never been published in this partition. Wait-free.
func (p *partition) tableSnap(table string) *treeSnapshot {
	slot := p.snaps.Load().tables[table]
	if slot == nil {
		return nil
	}
	return slot.snap.Load()
}

// slotLocked returns table's slot, creating it (by copying the snapSet
// map) when absent. Caller holds p.mu (write) or is in single-threaded
// open.
func (p *partition) slotLocked(table string) *tableSlot {
	set := p.snaps.Load()
	if slot, ok := set.tables[table]; ok {
		return slot
	}
	next := &snapSet{tables: make(map[string]*tableSlot, len(set.tables)+1)}
	for k, v := range set.tables {
		next.tables[k] = v
	}
	slot := &tableSlot{}
	slot.snap.Store(emptySnap)
	next.tables[table] = slot
	p.snaps.Store(next)
	return slot
}

// publishLocked swaps table's read snapshot to the writer tree's
// current root — the single atomic store that makes a committed
// mutation (or a whole batch of them) visible to the lock-free read
// path. Caller holds p.mu (write) or is in single-threaded open.
// Because publication happens only under the write lock, holding every
// partition's read lock while collecting roots yields a consistent
// multi-partition cut (see Store.snapshotTable).
func (p *partition) publishLocked(table string, t *btree) {
	slot := p.slotLocked(table)
	slot.snap.Store(&treeSnapshot{root: t.root, size: t.size})
	p.metrics.rootSwaps.Inc()
	p.metrics.retiredNodes.Add(int64(t.depth()))
}

// publishAll publishes every writer-side table; used after WAL replay
// to expose the recovered state to the read path.
func (p *partition) publishAll() {
	for name, t := range p.tables {
		p.publishLocked(name, t)
	}
}

// snapshotTable collects one snapshot per partition as a single
// consistent cut: all partition read locks are held only while the
// already-published roots are gathered (publication happens under the
// write lock, so no root can swap mid-collection), then traversal
// proceeds lock-free. Entries are nil for partitions where the table
// has never been published.
func (s *Store) snapshotTable(table string) ([]*treeSnapshot, error) {
	for _, p := range s.parts {
		p.mu.RLock()
	}
	snaps := make([]*treeSnapshot, len(s.parts))
	var err error
	for i, p := range s.parts {
		if p.closed.Load() {
			err = ErrClosed
			break
		}
		snaps[i] = p.tableSnap(table)
	}
	for _, p := range s.parts {
		p.mu.RUnlock()
	}
	if err != nil {
		return nil, err
	}
	return snaps, nil
}
