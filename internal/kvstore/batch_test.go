package kvstore

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func fieldsOf(v string) map[string][]byte {
	return map[string][]byte{"f": []byte(v)}
}

// TestBatchGetOrderAndPerItemErrors checks that a cross-shard batch
// read returns results positionally, with per-item ErrNotFound for
// misses and data for hits.
func TestBatchGetOrderAndPerItemErrors(t *testing.T) {
	s := OpenMemoryShards(4)
	defer s.Close()
	for i := 0; i < 20; i++ {
		if _, err := s.Put("t", fmt.Sprintf("key%02d", i), fieldsOf(fmt.Sprint(i))); err != nil {
			t.Fatal(err)
		}
	}
	reqs := []GetReq{
		{Table: "t", Key: "key07"},
		{Table: "t", Key: "missing"},
		{Table: "t", Key: "key00"},
		{Table: "nosuch", Key: "key00"},
		{Table: "t", Key: "key19"},
	}
	res := s.BatchGet(reqs)
	if len(res) != len(reqs) {
		t.Fatalf("got %d results for %d requests", len(res), len(reqs))
	}
	for _, i := range []int{0, 2, 4} {
		if res[i].Err != nil {
			t.Fatalf("item %d: unexpected error %v", i, res[i].Err)
		}
		want := map[int]string{0: "7", 2: "0", 4: "19"}[i]
		if got := string(res[i].Record.Fields["f"]); got != want {
			t.Fatalf("item %d: got %q want %q", i, got, want)
		}
	}
	for _, i := range []int{1, 3} {
		if !errors.Is(res[i].Err, ErrNotFound) {
			t.Fatalf("item %d: got %v, want ErrNotFound", i, res[i].Err)
		}
	}
}

// TestBatchApplyMixedOutcomes drives puts, merges, conditional
// failures and deletes through one batch and checks per-item results.
func TestBatchApplyMixedOutcomes(t *testing.T) {
	s := OpenMemoryShards(4)
	defer s.Close()
	if _, err := s.Put("t", "a", fieldsOf("v1")); err != nil {
		t.Fatal(err)
	}
	res := s.BatchApply([]Mutation{
		{Op: MutPut, Table: "t", Key: "b", Fields: fieldsOf("new"), Expect: AnyVersion},
		{Op: MutPut, Table: "t", Key: "a", Fields: fieldsOf("x"), Expect: MustNotExist}, // exists → ErrExists
		{Op: MutUpdate, Table: "t", Key: "a", Fields: map[string][]byte{"g": []byte("merged")}},
		{Op: MutUpdate, Table: "t", Key: "nope", Fields: fieldsOf("x")}, // missing → ErrNotFound
		{Op: MutDelete, Table: "t", Key: "a", Expect: 999},              // wrong version → mismatch
		{Op: MutPut, Table: "t", Key: "c", Fields: fieldsOf("c1"), Expect: MustNotExist},
		{Op: MutDelete, Table: "t", Key: "c", Expect: AnyVersion},
	})
	if res[0].Err != nil || res[0].Version != 1 {
		t.Fatalf("item 0: %+v", res[0])
	}
	if !errors.Is(res[1].Err, ErrExists) {
		t.Fatalf("item 1: got %v, want ErrExists", res[1].Err)
	}
	if res[2].Err != nil || res[2].Version != 2 {
		t.Fatalf("item 2: %+v", res[2])
	}
	if !errors.Is(res[3].Err, ErrNotFound) {
		t.Fatalf("item 3: got %v, want ErrNotFound", res[3].Err)
	}
	if !errors.Is(res[4].Err, ErrVersionMismatch) {
		t.Fatalf("item 4: got %v, want ErrVersionMismatch", res[4].Err)
	}
	if res[5].Err != nil || res[6].Err != nil {
		t.Fatalf("items 5/6: %+v %+v", res[5], res[6])
	}
	// The merge landed and preserved the old field.
	rec, err := s.Get("t", "a")
	if err != nil {
		t.Fatal(err)
	}
	if string(rec.Fields["f"]) != "v1" || string(rec.Fields["g"]) != "merged" {
		t.Fatalf("merged record: %v", rec.Fields)
	}
	// The delete landed.
	if _, err := s.Get("t", "c"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted key: %v", err)
	}
}

// TestBatchApplyDurableAcrossReopen writes a cross-shard batch under
// sync+group-commit and checks every item survives a reopen — the
// single durability wait per partition must cover the whole group.
func TestBatchApplyDurableAcrossReopen(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "walz")
	opts := Options{Path: dir, Shards: 4, SyncWrites: true, GroupCommit: time.Millisecond}
	s, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	var muts []Mutation
	for i := 0; i < 32; i++ {
		muts = append(muts, Mutation{
			Op: MutPut, Table: "t", Key: fmt.Sprintf("key%02d", i),
			Fields: fieldsOf(fmt.Sprint(i)), Expect: AnyVersion,
		})
	}
	for i, r := range s.BatchApply(muts) {
		if r.Err != nil {
			t.Fatalf("item %d: %v", i, r.Err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Len("t"); got != 32 {
		t.Fatalf("reopened store has %d records, want 32", got)
	}
	for i := 0; i < 32; i++ {
		rec, err := s2.Get("t", fmt.Sprintf("key%02d", i))
		if err != nil {
			t.Fatal(err)
		}
		if string(rec.Fields["f"]) != fmt.Sprint(i) {
			t.Fatalf("key%02d: %v", i, rec.Fields)
		}
	}
}

// TestBatchConcurrentWithCompactAndScan races batched writers against
// Compact and cross-shard BatchGet/Scan readers (run under -race; the
// tier-1 gate does). Every batch item must either succeed or fail
// with a recognized per-item error, and scans must always observe
// well-formed records.
func TestBatchConcurrentWithCompactAndScan(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "walz")
	s, err := Open(Options{Path: dir, Shards: 4, SyncWrites: true, GroupCommit: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const keys = 64
	keyOf := func(i int) string { return fmt.Sprintf("key%03d", i%keys) }
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var batches atomic.Int64

	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				var muts []Mutation
				for i := 0; i < 8; i++ {
					muts = append(muts, Mutation{
						Op: MutPut, Table: "t", Key: keyOf(g*17 + n*8 + i),
						Fields: fieldsOf(fmt.Sprint(n)), Expect: AnyVersion,
					})
				}
				for i, r := range s.BatchApply(muts) {
					if r.Err != nil {
						t.Errorf("writer %d item %d: %v", g, i, r.Err)
						return
					}
				}
				batches.Add(1)
			}
		}(g)
	}
	wg.Add(1)
	go func() { // cross-shard batched reader
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var reqs []GetReq
			for i := 0; i < 16; i++ {
				reqs = append(reqs, GetReq{Table: "t", Key: keyOf(i * 5)})
			}
			for i, r := range s.BatchGet(reqs) {
				if r.Err != nil && !errors.Is(r.Err, ErrNotFound) {
					t.Errorf("reader item %d: %v", i, r.Err)
					return
				}
				if r.Err == nil && len(r.Record.Fields["f"]) == 0 {
					t.Errorf("reader item %d: empty record", i)
					return
				}
			}
		}
	}()
	wg.Add(1)
	go func() { // scanner
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			kvs, err := s.Scan("t", "", -1)
			if err != nil {
				t.Errorf("scan: %v", err)
				return
			}
			for i := 1; i < len(kvs); i++ {
				if kvs[i-1].Key >= kvs[i].Key {
					t.Errorf("scan out of order: %q >= %q", kvs[i-1].Key, kvs[i].Key)
					return
				}
			}
		}
	}()

	deadline := time.After(300 * time.Millisecond)
	for done := false; !done; {
		select {
		case <-deadline:
			done = true
		default:
			if err := s.Compact(); err != nil {
				t.Fatalf("compact: %v", err)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	close(stop)
	wg.Wait()
	if batches.Load() == 0 {
		t.Fatal("no write batches completed")
	}
}

// TestBatchOnClosedStore checks every item of a batch against a
// closed store reports ErrClosed rather than panicking or hanging.
func TestBatchOnClosedStore(t *testing.T) {
	s := OpenMemoryShards(2)
	s.Close()
	for _, r := range s.BatchGet([]GetReq{{Table: "t", Key: "a"}, {Table: "t", Key: "b"}}) {
		if !errors.Is(r.Err, ErrClosed) {
			t.Fatalf("get: %v", r.Err)
		}
	}
	for _, r := range s.BatchApply([]Mutation{{Op: MutPut, Table: "t", Key: "a", Expect: AnyVersion}}) {
		if !errors.Is(r.Err, ErrClosed) {
			t.Fatalf("apply: %v", r.Err)
		}
	}
}

// BenchmarkStoreBatchApply compares batched against single-op writes
// on the partitioned engine (no WAL, pure lock economics).
func BenchmarkStoreBatchApply(b *testing.B) {
	for _, size := range []int{1, 16} {
		b.Run(fmt.Sprintf("batch%d", size), func(b *testing.B) {
			s := OpenMemoryShards(8)
			defer s.Close()
			muts := make([]Mutation, size)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := range muts {
					muts[j] = Mutation{
						Op: MutPut, Table: "t", Key: fmt.Sprintf("key%04d", (i+j)%1024),
						Fields: fieldsOf("v"), Expect: AnyVersion,
					}
				}
				if size == 1 {
					if _, err := s.Put(muts[0].Table, muts[0].Key, muts[0].Fields); err != nil {
						b.Fatal(err)
					}
					continue
				}
				for _, r := range s.BatchApply(muts) {
					if r.Err != nil {
						b.Fatal(r.Err)
					}
				}
			}
			b.SetBytes(0)
			b.ReportMetric(float64(size), "items/batch")
		})
	}
}
