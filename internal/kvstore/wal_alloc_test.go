package kvstore

import "testing"

// TestWALEncodeZeroAlloc pins the payoff of the append-style encoder
// and its buffer pool: serializing a WAL record into a buffer with
// enough capacity performs no allocations, so the hot write path's
// per-record encode cost is pure byte copying.
func TestWALEncodeZeroAlloc(t *testing.T) {
	rec := walRecord{
		Op:      walPut,
		Table:   "usertable",
		Key:     "user000000012345",
		Version: 42,
		Fields: map[string][]byte{
			"field0": []byte("some-representative-payload-bytes"),
			"field1": []byte("another-representative-payload"),
		},
	}
	buf := make([]byte, 0, 1024)
	if per := testing.AllocsPerRun(1000, func() {
		buf = appendWALRecord(buf[:0], rec)
	}); per != 0 {
		t.Errorf("appendWALRecord = %.1f allocs/op, want 0", per)
	}

	// And the pooled round trip the wal's append path uses stays
	// allocation-free once the pool is warm.
	if per := testing.AllocsPerRun(1000, func() {
		bp := walBufPool.Get().(*[]byte)
		payload := appendWALRecord((*bp)[:0], rec)
		_ = payload
		*bp = payload[:0]
		walBufPool.Put(bp)
	}); per != 0 {
		t.Errorf("pooled WAL encode = %.1f allocs/op, want 0", per)
	}
}
