package kvstore

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func TestCompactShrinksLogAndPreservesState(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.wal")
	// A tiny retention window lets compaction drop overwritten versions
	// immediately instead of keeping the MVCC history around.
	s, err := Open(Options{Path: path, Retention: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}

	// Overwrite a small key set many times and delete some keys: the
	// log grows far beyond the live data.
	for round := 0; round < 50; round++ {
		for i := 0; i < 20; i++ {
			if _, err := s.Put("t", fmt.Sprintf("k%02d", i), fields(fmt.Sprintf("v%d", round))); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := 10; i < 20; i++ {
		if err := s.Delete("t", fmt.Sprintf("k%02d", i)); err != nil {
			t.Fatal(err)
		}
	}
	before, err := s.WALSize()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	after, err := s.WALSize()
	if err != nil {
		t.Fatal(err)
	}
	if after >= before/10 {
		t.Errorf("compaction barely shrank the log: %d → %d", before, after)
	}

	// The store still works after compaction.
	if _, err := s.Put("t", "post", fields("compact")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Recovery from the compacted log reproduces exactly the state.
	r, err := Open(Options{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len("t") != 11 { // k00..k09 + post
		t.Errorf("recovered %d records, want 11", r.Len("t"))
	}
	rec, err := r.Get("t", "k05")
	if err != nil {
		t.Fatal(err)
	}
	if string(rec.Fields["field0"]) != "v49" {
		t.Errorf("k05 = %s", rec.Fields["field0"])
	}
	if rec.Version != 50 {
		t.Errorf("k05 version = %d, want 50 (preserved through compaction)", rec.Version)
	}
	if _, err := r.Get("t", "k15"); err == nil {
		t.Error("deleted key resurrected by compaction")
	}
	if _, err := r.Get("t", "post"); err != nil {
		t.Errorf("post-compaction write lost: %v", err)
	}
}

// TestCompactConcurrentWithGroupCommitWrites races Compact against
// writers in group-commit + sync mode. Compact swaps each partition's
// WAL under the partition lock, so a writer must wait for durability
// on the WAL it appended to (captured under the lock), never on the
// fresh WAL whose sequence numbers restarted at zero — the old code
// read p.wal after unlock, an unsynchronized access -race catches and
// a potential indefinite hang on an idle store.
func TestCompactConcurrentWithGroupCommitWrites(t *testing.T) {
	s, err := Open(Options{
		Path:        t.TempDir(),
		Shards:      4,
		SyncWrites:  true,
		GroupCommit: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const writers = 4
	const rounds = 50
	errCh := make(chan error, writers)
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				if _, err := s.Put("t", fmt.Sprintf("w%d-k%03d", g, i), fields("v")); err != nil {
					errCh <- err
					return
				}
			}
		}(g)
	}
	for i := 0; i < 10; i++ {
		if err := s.Compact(); err != nil {
			t.Fatalf("concurrent compact: %v", err)
		}
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatalf("writer during compact: %v", err)
	}
	// A write on the now-idle store must not hang waiting on the
	// post-compaction WAL's restarted sequence numbers.
	if _, err := s.Put("t", "final", fields("v")); err != nil {
		t.Fatal(err)
	}
	if got := s.Len("t"); got != writers*rounds+1 {
		t.Errorf("Len = %d, want %d", got, writers*rounds+1)
	}
}

func TestCompactInMemoryIsNoop(t *testing.T) {
	s := OpenMemory()
	defer s.Close()
	if err := s.Compact(); err != nil {
		t.Errorf("Compact on memory store = %v", err)
	}
	if n, err := s.WALSize(); err != nil || n != 0 {
		t.Errorf("WALSize = %d, %v", n, err)
	}
}

func TestCompactClosedStore(t *testing.T) {
	s := OpenMemory()
	s.Close()
	if err := s.Compact(); err != ErrClosed {
		t.Errorf("Compact after close = %v", err)
	}
	if _, err := s.WALSize(); err != ErrClosed {
		t.Errorf("WALSize after close = %v", err)
	}
}

func TestCompactMultipleTables(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.wal")
	s, err := Open(Options{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	s.Put("a", "k", fields("1"))
	s.Put("b", "k", fields("2"))
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	s.Close()
	r, err := Open(Options{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	ra, err := r.Get("a", "k")
	if err != nil || string(ra.Fields["field0"]) != "1" {
		t.Errorf("table a after compaction: %v, %v", ra, err)
	}
	rb, err := r.Get("b", "k")
	if err != nil || string(rb.Fields["field0"]) != "2" {
		t.Errorf("table b after compaction: %v, %v", rb, err)
	}
}
