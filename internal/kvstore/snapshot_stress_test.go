package kvstore

import (
	"bytes"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestSnapshotReadsVsWritersVsCompact is the snapshot-consistency
// stress test run by make check's race-enabled short pass. Writers
// mutate pairs of same-partition keys through BatchApply (always
// writing the same value to both members of a pair), churn single keys
// with puts and deletes, and Compact rewrites the WAL segments — all
// while readers continuously BatchGet, Scan and ForEach. Because a
// partition publishes a batch with one atomic root swap, a reader must
// never observe a torn pair (two members with different values), and
// every scan must observe a single consistent root (strictly ordered
// keys, coherent records).
func TestSnapshotReadsVsWritersVsCompact(t *testing.T) {
	const shards = 4
	s, err := Open(Options{
		Path:        filepath.Join(t.TempDir(), "wal"),
		Shards:      shards,
		GroupCommit: 200 * time.Microsecond,
		SyncWrites:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Build same-partition key pairs: both members of a pair hash to
	// one shard, so a BatchApply updating both publishes exactly one
	// new root and readers see the pair move atomically.
	const pairs = 16
	type pair struct{ a, b string }
	var pairSet []pair
	byShard := map[int][]string{}
	for i := 0; len(pairSet) < pairs; i++ {
		k := fmt.Sprintf("pair%05d", i)
		sh := shardOf(k, shards)
		if len(byShard[sh]) > 0 {
			prev := byShard[sh][len(byShard[sh])-1]
			byShard[sh] = byShard[sh][:len(byShard[sh])-1]
			pairSet = append(pairSet, pair{a: prev, b: k})
		} else {
			byShard[sh] = append(byShard[sh], k)
		}
	}
	for _, pr := range pairSet {
		for _, k := range []string{pr.a, pr.b} {
			if _, err := s.Put("t", k, map[string][]byte{"v": []byte("0")}); err != nil {
				t.Fatal(err)
			}
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var torn atomic.Int64
	fail := func(format string, args ...any) {
		torn.Add(1)
		t.Errorf(format, args...)
	}

	// Pair writers: both members always move to the same value in one
	// same-partition batch.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for c := 1; ; c++ {
				select {
				case <-stop:
					return
				default:
				}
				for i := w; i < len(pairSet); i += 2 {
					pr := pairSet[i]
					val := []byte(fmt.Sprintf("%d.%d", w, c))
					res := s.BatchApply([]Mutation{
						{Op: MutPut, Table: "t", Key: pr.a, Fields: map[string][]byte{"v": val}, Expect: AnyVersion},
						{Op: MutPut, Table: "t", Key: pr.b, Fields: map[string][]byte{"v": val}, Expect: AnyVersion},
					})
					for _, r := range res {
						if r.Err != nil {
							fail("pair write: %v", r.Err)
							return
						}
					}
				}
			}
		}(w)
	}

	// Churn writer: single-key puts and deletes exercise the COW
	// insert and delete paths (splits, merges, borrows) while scans run.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for c := 0; ; c++ {
			select {
			case <-stop:
				return
			default:
			}
			k := fmt.Sprintf("churn%05d", c%500)
			if c%3 == 2 {
				if err := s.Delete("t", k); err != nil && !errors.Is(err, ErrNotFound) {
					fail("churn delete: %v", err)
					return
				}
			} else if _, err := s.Put("t", k, map[string][]byte{"v": []byte("c")}); err != nil {
				fail("churn put: %v", err)
				return
			}
		}
	}()

	// Compactor: continuously swaps fresh WAL segments in under the
	// write locks; the lock-free read path must never notice.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := s.Compact(); err != nil {
				fail("compact: %v", err)
				return
			}
		}
	}()

	checkPair := func(ra, rb *VersionedRecord, src string, pr pair) {
		if ra == nil || rb == nil {
			return
		}
		if !bytes.Equal(ra.Fields["v"], rb.Fields["v"]) {
			fail("%s: torn pair %s=%q / %s=%q", src, pr.a, ra.Fields["v"], pr.b, rb.Fields["v"])
		}
	}

	// Readers: BatchGet each pair (one snapshot per partition), full
	// Scans (consistent multi-partition cut) and ForEach (key order).
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, pr := range pairSet {
					res := s.BatchGet([]GetReq{{Table: "t", Key: pr.a}, {Table: "t", Key: pr.b}})
					if res[0].Err != nil || res[1].Err != nil {
						fail("batchget: %v / %v", res[0].Err, res[1].Err)
						return
					}
					checkPair(res[0].Record, res[1].Record, "batchget", pr)
				}
				kvs, err := s.Scan("t", "", -1)
				if err != nil {
					fail("scan: %v", err)
					return
				}
				seen := map[string]*VersionedRecord{}
				for i, kv := range kvs {
					if i > 0 && kvs[i-1].Key >= kv.Key {
						fail("scan out of order: %q then %q", kvs[i-1].Key, kv.Key)
						return
					}
					seen[kv.Key] = kv.Record
				}
				for _, pr := range pairSet {
					checkPair(seen[pr.a], seen[pr.b], "scan", pr)
				}
				prev := ""
				if err := s.ForEach("t", func(key string, rec *VersionedRecord) bool {
					if prev != "" && key <= prev {
						fail("foreach out of order: %q then %q", prev, key)
						return false
					}
					prev = key
					return rec != nil
				}); err != nil {
					fail("foreach: %v", err)
					return
				}
			}
		}()
	}

	d := 800 * time.Millisecond
	if testing.Short() {
		d = 400 * time.Millisecond
	}
	time.Sleep(d)
	close(stop)
	wg.Wait()
	if torn.Load() > 0 {
		t.Fatalf("%d consistency violations", torn.Load())
	}
}
