package kvstore

import (
	"context"
	"errors"
	"fmt"
	"time"

	"ycsbt/internal/db"
	"ycsbt/internal/obs"
	"ycsbt/internal/properties"
)

// Binding adapts a Store to the YCSB+T db.DB interface. It is the
// non-transactional embedded binding ("kvstore"): single-key
// operations are linearizable but multi-operation sequences are not
// isolated, so the CEW anomaly score grows with concurrency exactly
// as in Figure 4 of the paper.
type Binding struct {
	db.NoTransactions
	eng  Engine
	owns bool // Close the engine on Cleanup

	// asOf pins every read to a fixed snapshot timestamp (the "as_of"
	// property); 0 reads at head. unpin releases the retention pin
	// taken for it on Cleanup.
	asOf  int64
	unpin func()
}

// NewBinding wraps an existing store; Cleanup leaves it open.
func NewBinding(s *Store) *Binding { return &Binding{eng: s} }

// NewEngineBinding wraps any Engine (a replicated store, an audit
// wrapper, ...) in the same db.DB adapter; Cleanup leaves it open.
func NewEngineBinding(e Engine) *Binding { return &Binding{eng: e} }

func init() {
	db.Register("kvstore", func() (db.DB, error) { return &Binding{}, nil })
}

// Init opens the store per the "kvstore.path", "kvstore.sync",
// "kvstore.shards", "kvstore.wal.group_commit_ms",
// "kvstore.retention_ms" and "kvstore.vacuum_interval_ms" properties
// unless NewBinding supplied one. The "as_of" property (a commit
// timestamp, or -1 for "now") pins every read this binding serves to
// that snapshot: reads resolve through version chains and never see
// later writes, and the pinned versions are protected from vacuum
// until Cleanup.
func (b *Binding) Init(p *properties.Properties) error {
	if b.eng == nil {
		s, err := Open(Options{
			Path:           p.GetString("kvstore.path", ""),
			SyncWrites:     p.GetBool("kvstore.sync", false),
			Shards:         p.GetInt("kvstore.shards", DefaultShards),
			GroupCommit:    time.Duration(p.GetInt64("kvstore.wal.group_commit_ms", 0)) * time.Millisecond,
			Retention:      time.Duration(p.GetInt64("kvstore.retention_ms", 0)) * time.Millisecond,
			VacuumInterval: time.Duration(p.GetInt64("kvstore.vacuum_interval_ms", 0)) * time.Millisecond,
			Metrics:        obs.Enabled(p.GetBool("obs.enabled", false)),
		})
		if err != nil {
			return err
		}
		b.eng = s
		b.owns = true
	}
	if ts := p.GetInt64("as_of", 0); ts != 0 {
		pinned, release := b.eng.Pin()
		if ts < 0 {
			ts = pinned
		}
		b.asOf, b.unpin = ts, release
	}
	return nil
}

// Cleanup releases the as-of pin and closes the store when this
// binding opened it.
func (b *Binding) Cleanup() error {
	if b.unpin != nil {
		b.unpin()
		b.unpin = nil
	}
	if b.owns && b.eng != nil {
		return b.eng.Close()
	}
	return nil
}

// Store exposes the underlying partitioned store when the binding
// wraps one directly (for validation scans and tests); nil when the
// binding wraps some other Engine.
func (b *Binding) Store() *Store {
	s, _ := b.eng.(*Store)
	return s
}

// Eng exposes the wrapped engine.
func (b *Binding) Eng() Engine { return b.eng }

// translate maps engine errors to db-layer sentinels.
func translate(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, ErrNotFound):
		return fmt.Errorf("%w: %v", db.ErrNotFound, err)
	case errors.Is(err, ErrVersionMismatch), errors.Is(err, ErrExists):
		return fmt.Errorf("%w: %v", db.ErrConflict, err)
	default:
		return err
	}
}

// Read implements db.DB.
func (b *Binding) Read(ctx context.Context, table, key string, fields []string) (db.Record, error) {
	var rec *VersionedRecord
	var err error
	if b.asOf != 0 {
		rec, err = b.eng.GetAsOf(table, key, b.asOf)
	} else {
		rec, err = b.eng.Get(table, key)
	}
	if err != nil {
		return nil, translate(err)
	}
	db.ReportReadVersion(ctx, rec.Version)
	return filterFields(rec.Fields, fields), nil
}

// Scan implements db.DB.
func (b *Binding) Scan(_ context.Context, table, startKey string, count int, fields []string) ([]db.KV, error) {
	var kvs []VersionedKV
	var err error
	if b.asOf != 0 {
		kvs, err = b.eng.ScanAsOf(table, startKey, count, b.asOf)
	} else {
		kvs, err = b.eng.Scan(table, startKey, count)
	}
	if err != nil {
		return nil, translate(err)
	}
	out := make([]db.KV, 0, len(kvs))
	for _, kv := range kvs {
		out = append(out, db.KV{Key: kv.Key, Record: filterFields(kv.Record.Fields, fields)})
	}
	return out, nil
}

// Update implements db.DB.
func (b *Binding) Update(ctx context.Context, table, key string, values db.Record) error {
	ver, err := b.eng.Update(table, key, values)
	if err == nil {
		db.ReportWriteVersion(ctx, ver)
	}
	return translate(err)
}

// Insert implements db.DB; like most key-value stores, an insert of
// an existing key overwrites it.
func (b *Binding) Insert(ctx context.Context, table, key string, values db.Record) error {
	ver, err := b.eng.Put(table, key, values)
	if err == nil {
		db.ReportWriteVersion(ctx, ver)
	}
	return translate(err)
}

// Delete implements db.DB.
func (b *Binding) Delete(_ context.Context, table, key string) error {
	return translate(b.eng.Delete(table, key))
}

// ExecBatch implements db.BatchDB by splitting the batch into maximal
// runs of same-kind operations — consecutive reads become one
// BatchGet, consecutive writes one BatchApply — so each run pays one
// lock acquisition and one group-commit wait per touched partition
// while the batch's internal order is preserved.
func (b *Binding) ExecBatch(_ context.Context, ops []db.BatchOp) []db.BatchResult {
	out := make([]db.BatchResult, len(ops))
	for lo := 0; lo < len(ops); {
		hi := lo + 1
		for hi < len(ops) && (ops[hi].Op == db.OpRead) == (ops[lo].Op == db.OpRead) {
			hi++
		}
		if ops[lo].Op == db.OpRead {
			b.execReadRun(ops[lo:hi], out[lo:hi])
		} else {
			b.execWriteRun(ops[lo:hi], out[lo:hi])
		}
		lo = hi
	}
	return out
}

// execReadRun answers a run of reads with one engine BatchGet
// (BatchGetAsOf when the binding is pinned to a snapshot).
func (b *Binding) execReadRun(ops []db.BatchOp, out []db.BatchResult) {
	reqs := make([]GetReq, len(ops))
	for i, op := range ops {
		reqs[i] = GetReq{Table: op.Table, Key: op.Key}
	}
	var results []GetResult
	if b.asOf != 0 {
		results = b.eng.BatchGetAsOf(reqs, b.asOf)
	} else {
		results = b.eng.BatchGet(reqs)
	}
	for i, r := range results {
		if r.Err != nil {
			out[i] = db.BatchResult{Err: translate(r.Err)}
			continue
		}
		out[i] = db.BatchResult{Record: filterFields(r.Record.Fields, ops[i].Fields)}
	}
}

// execWriteRun applies a run of writes with one engine BatchApply.
// Updates map to MutUpdate (read-merge-write under the partition
// lock); inserts overwrite like single-op Insert does.
func (b *Binding) execWriteRun(ops []db.BatchOp, out []db.BatchResult) {
	muts := make([]Mutation, 0, len(ops))
	idx := make([]int, 0, len(ops))
	for i, op := range ops {
		var m Mutation
		switch op.Op {
		case db.OpUpdate:
			m = Mutation{Op: MutUpdate, Table: op.Table, Key: op.Key, Fields: op.Values}
		case db.OpInsert:
			m = Mutation{Op: MutPut, Table: op.Table, Key: op.Key, Fields: op.Values, Expect: AnyVersion}
		case db.OpDelete:
			m = Mutation{Op: MutDelete, Table: op.Table, Key: op.Key, Expect: AnyVersion}
		default:
			out[i] = db.BatchResult{Err: fmt.Errorf("%w: cannot batch %v", db.ErrNotSupported, op.Op)}
			continue
		}
		muts = append(muts, m)
		idx = append(idx, i)
	}
	for j, r := range b.eng.BatchApply(muts) {
		out[idx[j]] = db.BatchResult{Err: translate(r.Err)}
	}
}

var _ db.BatchDB = (*Binding)(nil)

// filterFields projects fields out of a stored record. The engine
// hands out shared immutable records, so the map is always shallow-
// copied — returning `all` directly (the old nil-fields fast path)
// would let a caller's map insert corrupt live engine state. The byte
// slices themselves stay engine-owned: db.Record values are read-only
// by contract, and the mutation-audit test enforces it.
func filterFields(all map[string][]byte, fields []string) db.Record {
	if fields == nil {
		out := make(db.Record, len(all))
		for f, v := range all {
			out[f] = v
		}
		return out
	}
	out := make(db.Record, len(fields))
	for _, f := range fields {
		if v, ok := all[f]; ok {
			out[f] = v
		}
	}
	return out
}
