package kvstore

import "sync"

// Ingest merges a batch of versioned records into table, preserving
// each record's Version and CommitTS — the migration counterpart of
// BulkLoad. Where BulkLoad builds an empty table bottom-up, Ingest
// layers a consistent cut of *someone else's* keys (a shard-map slot
// copied as-of a pinned ts) into a table that is already serving
// traffic, so it takes the normal write path per partition: link onto
// the key's existing chain, WAL the frame, publish one new root per
// touched partition.
//
// Idempotence: a record whose key already has a head at the same or a
// newer CommitTS is skipped, so re-running a partially failed
// migration copy converges instead of stacking duplicate versions.
// Zero Version/CommitTS default like BulkLoad (version 1, fresh ts);
// the destination clock is advanced past every provided CommitTS so
// later local commits sort after the ingested history.
//
// Tombstones travel too: a BulkKV with Deleted set writes a delete
// version (same WAL frame the live delete path logs), so a slot copy
// that includes its deletes cannot resurrect a deleted key on a node
// that still holds an older live record from a previous ownership
// stint.
//
// Like every multi-key operation, Ingest is atomic per partition, not
// across the store: readers may observe a prefix of the batch. The
// cluster layer only routes a slot to its new owner after the whole
// ingest returns, so that partial state is never served.
func (s *Store) Ingest(table string, kvs []BulkKV) error {
	if s.parts[0].isClosed() {
		return ErrClosed
	}
	if len(kvs) == 0 {
		return nil
	}
	if len(s.parts) == 1 {
		return s.parts[0].ingest(table, kvs)
	}
	split := make([][]BulkKV, len(s.parts))
	for _, kv := range kvs {
		i := shardOf(kv.Key, len(s.parts))
		split[i] = append(split[i], kv)
	}
	errs := make([]error, len(s.parts))
	var wg sync.WaitGroup
	for i, p := range s.parts {
		if len(split[i]) == 0 {
			continue
		}
		wg.Add(1)
		go func(i int, p *partition, sub []BulkKV) {
			defer wg.Done()
			errs[i] = p.ingest(table, sub)
		}(i, p, split[i])
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// ingest applies this partition's share of the batch under one lock
// acquisition and one durability wait, mirroring the batch write
// path.
func (p *partition) ingest(table string, kvs []BulkKV) error {
	p.mu.Lock()
	if p.closed.Load() {
		p.mu.Unlock()
		return ErrClosed
	}
	w := p.wal // captured under p.mu: compact may swap p.wal after unlock
	t := p.table(table)
	var seq uint64
	var applied bool
	for _, kv := range kvs {
		cur := t.get(kv.Key)
		ver, ts := kv.Version, kv.CommitTS
		if ver == 0 {
			ver = 1
		}
		if ts == 0 {
			ts = p.store.nextTS()
		} else {
			p.store.advanceTS(ts)
		}
		if cur != nil && cur.CommitTS >= ts {
			continue // already have this version or newer (re-run)
		}
		var rec *VersionedRecord
		op := walPutTS
		if kv.Deleted {
			rec = &VersionedRecord{Version: ver, CommitTS: ts, deleted: true}
			op = walDeleteTS
		} else {
			rec = &VersionedRecord{Version: ver, CommitTS: ts, Fields: make(map[string][]byte, len(kv.Fields))}
			for f, v := range kv.Fields {
				rec.Fields[f] = append([]byte(nil), v...)
			}
		}
		rec.link(cur)
		if w != nil {
			n, err := w.append(walRecord{Op: op, Table: table, Key: kv.Key, Version: ver, CommitTS: ts, Fields: rec.Fields})
			if err != nil {
				// Publish what was applied so tree and snapshot agree.
				if applied {
					p.publishLocked(table, t)
				}
				p.mu.Unlock()
				return err
			}
			seq = n
		}
		t.put(kv.Key, rec)
		p.retireLocked(rec)
		applied = true
	}
	if applied {
		p.publishLocked(table, t)
	}
	p.mu.Unlock()
	if seq != 0 {
		if err := w.waitDurable(seq); err != nil {
			return err
		}
	}
	return nil
}
