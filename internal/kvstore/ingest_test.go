package kvstore

import (
	"errors"
	"fmt"
	"path/filepath"
	"testing"
)

func openIngestStore(t *testing.T) *Store {
	t.Helper()
	s, err := Open(Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// Ingest must preserve the source records' versions and commit
// timestamps exactly — a CAS handle taken before a migration has to
// stay valid after it.
func TestIngestPreservesVersionAndCommitTS(t *testing.T) {
	s := openIngestStore(t)
	kvs := []BulkKV{
		{Key: "a", Fields: fieldsOf("va"), Version: 7, CommitTS: 100},
		{Key: "b", Fields: fieldsOf("vb"), Version: 3, CommitTS: 101},
	}
	if err := s.Ingest("t", kvs); err != nil {
		t.Fatal(err)
	}
	for _, kv := range kvs {
		rec, err := s.Get("t", kv.Key)
		if err != nil {
			t.Fatalf("Get(%s): %v", kv.Key, err)
		}
		if rec.Version != kv.Version || rec.CommitTS != kv.CommitTS {
			t.Errorf("%s: got version=%d ts=%d, want version=%d ts=%d",
				kv.Key, rec.Version, rec.CommitTS, kv.Version, kv.CommitTS)
		}
		if string(rec.Fields["f"]) != string(kv.Fields["f"]) {
			t.Errorf("%s: fields not preserved", kv.Key)
		}
	}
	// The imported history is visible to time travel at its own ts.
	if _, err := s.GetAsOf("t", "a", 99); err == nil {
		t.Error("record visible before its ingested commit ts")
	}
	if rec, err := s.GetAsOf("t", "a", 100); err != nil || rec.Version != 7 {
		t.Errorf("as-of read at ingested ts: rec=%v err=%v", rec, err)
	}
	// CAS against the preserved version works.
	if _, err := s.PutIfVersion("t", "a", fieldsOf("va2"), 7); err != nil {
		t.Errorf("CAS against ingested version: %v", err)
	}
}

// Re-running an ingest (a migration retry) must be a no-op: records
// whose head is already at the same or newer commit ts are skipped.
func TestIngestIdempotent(t *testing.T) {
	s := openIngestStore(t)
	kvs := []BulkKV{{Key: "k", Fields: fieldsOf("v1"), Version: 5, CommitTS: 50}}
	if err := s.Ingest("t", kvs); err != nil {
		t.Fatal(err)
	}
	// Local progress after the first ingest.
	ver, err := s.Put("t", "k", fieldsOf("v2"))
	if err != nil {
		t.Fatal(err)
	}
	// The retry must not clobber the newer local write.
	if err := s.Ingest("t", kvs); err != nil {
		t.Fatal(err)
	}
	rec, err := s.Get("t", "k")
	if err != nil {
		t.Fatal(err)
	}
	if rec.Version != ver || string(rec.Fields["f"]) != "v2" {
		t.Errorf("re-ingest clobbered newer write: got version=%d fields=%q", rec.Version, rec.Fields["f"])
	}
}

// Ingest must advance the destination's commit clock past the
// imported history, or the next local commit would timestamp itself
// into the migrated past.
func TestIngestAdvancesCommitClock(t *testing.T) {
	s := openIngestStore(t)
	const importedTS = 1 << 30
	if err := s.Ingest("t", []BulkKV{{Key: "k", Fields: fieldsOf("v"), Version: 1, CommitTS: importedTS}}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put("t", "fresh", fieldsOf("w")); err != nil {
		t.Fatal(err)
	}
	rec, err := s.Get("t", "fresh")
	if err != nil {
		t.Fatal(err)
	}
	if rec.CommitTS <= importedTS {
		t.Errorf("local commit ts %d did not advance past imported ts %d", rec.CommitTS, importedTS)
	}
}

// An ingested tombstone must delete the key: migrating a slot back to
// a former owner replays deletes performed elsewhere, or the former
// owner's hidden live records would resurrect.
func TestIngestTombstone(t *testing.T) {
	s := openIngestStore(t)
	if _, err := s.Put("t", "k", fieldsOf("alive")); err != nil {
		t.Fatal(err)
	}
	preTS := s.SnapshotTS()
	if err := s.Ingest("t", []BulkKV{{Key: "k", Deleted: true, Version: 9, CommitTS: preTS + 100}}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("t", "k"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("head read after ingested tombstone: %v, want ErrNotFound", err)
	}
	// History below the tombstone stays readable.
	if rec, err := s.GetAsOf("t", "k", preTS); err != nil || string(rec.Fields["f"]) != "alive" {
		t.Fatalf("pre-delete as-of read = %v, %v; want \"alive\"", rec, err)
	}
	// A live scan skips the key; a tombstone-carrying scan ships it.
	if out, err := s.ScanAsOf("t", "", -1, preTS+200); err != nil || len(out) != 0 {
		t.Fatalf("live as-of scan = %d records, %v; want 0", len(out), err)
	}
	out, err := s.ScanVersionsAsOf("t", "", -1, preTS+200)
	if err != nil || len(out) != 1 {
		t.Fatalf("tombstone scan = %d records, %v; want 1", len(out), err)
	}
	if !out[0].Record.Tombstone() || out[0].Record.Version != 9 || out[0].Record.CommitTS != preTS+100 {
		t.Errorf("tombstone scan record = tombstone=%v version=%d ts=%d, want true/9/%d",
			out[0].Record.Tombstone(), out[0].Record.Version, out[0].Record.CommitTS, preTS+100)
	}
	// Idempotence holds for tombstones too.
	if err := s.Ingest("t", []BulkKV{{Key: "k", Deleted: true, Version: 9, CommitTS: preTS + 100}}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("t", "k"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("head read after re-ingest: %v, want ErrNotFound", err)
	}
}

// Ingested tombstones must survive a WAL replay like any other write.
func TestIngestTombstoneDurable(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	s, err := Open(Options{Path: path, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Ingest("t", []BulkKV{
		{Key: "live", Fields: fieldsOf("v"), Version: 2, CommitTS: 50},
		{Key: "dead", Deleted: true, Version: 4, CommitTS: 60},
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(Options{Path: path, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if rec, err := s2.Get("t", "live"); err != nil || rec.Version != 2 {
		t.Fatalf("replayed live record = %v, %v; want version 2", rec, err)
	}
	if _, err := s2.Get("t", "dead"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("replayed ingested tombstone: %v, want ErrNotFound", err)
	}
}

// BulkLoad is the benchmark's fresh-load fast path; a tombstone there
// is a caller bug, not a migration.
func TestBulkLoadRejectsTombstone(t *testing.T) {
	s := openIngestStore(t)
	err := s.BulkLoad("t", []BulkKV{{Key: "k", Deleted: true}})
	if err == nil {
		t.Fatal("BulkLoad accepted a tombstone")
	}
}

// Ingest spreads records across partitions like normal writes do.
func TestIngestCrossesPartitions(t *testing.T) {
	s := openIngestStore(t)
	var kvs []BulkKV
	for i := 0; i < 64; i++ {
		kvs = append(kvs, BulkKV{
			Key:      fmt.Sprintf("user%04d", i),
			Fields:   fieldsOf("x"),
			Version:  1,
			CommitTS: int64(i + 1),
		})
	}
	if err := s.Ingest("t", kvs); err != nil {
		t.Fatal(err)
	}
	if got := s.Len("t"); got != 64 {
		t.Fatalf("Len = %d, want 64", got)
	}
	out, err := s.Scan("t", "", -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 64 {
		t.Fatalf("Scan returned %d records, want 64", len(out))
	}
	for i := 1; i < len(out); i++ {
		if out[i-1].Key >= out[i].Key {
			t.Fatalf("scan out of order at %d: %s >= %s", i, out[i-1].Key, out[i].Key)
		}
	}
}
