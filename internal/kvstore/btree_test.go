package kvstore

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func rec(v uint64) *VersionedRecord {
	return &VersionedRecord{Version: v, Fields: map[string][]byte{"f": []byte("x")}}
}

func TestBTreeBasic(t *testing.T) {
	bt := newBTree()
	if bt.get("a") != nil {
		t.Error("get on empty tree")
	}
	if bt.put("a", rec(1)) != nil {
		t.Error("put of new key should return nil old record")
	}
	if old := bt.put("a", rec(2)); old == nil || old.Version != 1 {
		t.Errorf("overwrite should return displaced record, got %+v", old)
	}
	if got := bt.get("a"); got == nil || got.Version != 2 {
		t.Errorf("get = %+v", got)
	}
	if bt.size != 1 {
		t.Errorf("size = %d", bt.size)
	}
	if !bt.delete("a") {
		t.Error("delete should report removal")
	}
	if bt.delete("a") {
		t.Error("double delete should report absence")
	}
	if bt.size != 0 {
		t.Errorf("size = %d", bt.size)
	}
}

func TestBTreeManyKeysSortedAscend(t *testing.T) {
	bt := newBTree()
	const n = 10000
	perm := rand.New(rand.NewSource(1)).Perm(n)
	for _, i := range perm {
		bt.put(fmt.Sprintf("key%08d", i), rec(uint64(i)))
	}
	if bt.size != n {
		t.Fatalf("size = %d", bt.size)
	}
	if msg := bt.check(); msg != "" {
		t.Fatalf("invariant violated: %s", msg)
	}
	var keys []string
	bt.ascend("", func(k string, _ *VersionedRecord) bool {
		keys = append(keys, k)
		return true
	})
	if len(keys) != n {
		t.Fatalf("ascend visited %d keys", len(keys))
	}
	if !sort.StringsAreSorted(keys) {
		t.Error("ascend not in sorted order")
	}
}

func TestBTreeAscendFromMidpoint(t *testing.T) {
	bt := newBTree()
	for i := 0; i < 100; i++ {
		bt.put(fmt.Sprintf("k%03d", i), rec(uint64(i)))
	}
	var keys []string
	bt.ascend("k050", func(k string, _ *VersionedRecord) bool {
		keys = append(keys, k)
		return len(keys) < 5
	})
	want := []string{"k050", "k051", "k052", "k053", "k054"}
	if len(keys) != len(want) {
		t.Fatalf("got %v", keys)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("got %v, want %v", keys, want)
		}
	}
	// Start between keys.
	keys = nil
	bt.ascend("k0505", func(k string, _ *VersionedRecord) bool {
		keys = append(keys, k)
		return len(keys) < 2
	})
	if len(keys) != 2 || keys[0] != "k051" {
		t.Fatalf("between-keys ascend = %v", keys)
	}
}

func TestBTreeDeleteRebalancing(t *testing.T) {
	// Insert enough to force multiple levels, then delete in several
	// orders to exercise all CLRS cases.
	orders := []string{"forward", "reverse", "random"}
	for _, order := range orders {
		t.Run(order, func(t *testing.T) {
			bt := newBTree()
			const n = 5000
			for i := 0; i < n; i++ {
				bt.put(fmt.Sprintf("k%06d", i), rec(uint64(i)))
			}
			idx := make([]int, n)
			for i := range idx {
				idx[i] = i
			}
			switch order {
			case "reverse":
				for i, j := 0, n-1; i < j; i, j = i+1, j-1 {
					idx[i], idx[j] = idx[j], idx[i]
				}
			case "random":
				rand.New(rand.NewSource(7)).Shuffle(n, func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
			}
			for step, i := range idx {
				if !bt.delete(fmt.Sprintf("k%06d", i)) {
					t.Fatalf("delete k%06d failed", i)
				}
				if step%500 == 0 {
					if msg := bt.check(); msg != "" {
						t.Fatalf("invariant after %d deletes: %s", step+1, msg)
					}
				}
			}
			if bt.size != 0 {
				t.Fatalf("size = %d after deleting all", bt.size)
			}
			if msg := bt.check(); msg != "" {
				t.Fatalf("final invariant: %s", msg)
			}
		})
	}
}

// TestBTreeVsMapQuick drives random operation sequences against the
// tree and a reference map, checking equivalence and structural
// invariants.
func TestBTreeVsMapQuick(t *testing.T) {
	type op struct {
		Kind uint8
		Key  uint16
	}
	f := func(ops []op) bool {
		bt := newBTree()
		ref := make(map[string]uint64)
		ver := uint64(0)
		for _, o := range ops {
			key := fmt.Sprintf("k%04d", o.Key%500)
			switch o.Kind % 3 {
			case 0: // put
				ver++
				old := bt.put(key, rec(ver))
				if _, existed := ref[key]; (old != nil) != existed {
					return false
				}
				ref[key] = ver
			case 1: // delete
				removed := bt.delete(key)
				_, existed := ref[key]
				if removed != existed {
					return false
				}
				delete(ref, key)
			case 2: // get
				got := bt.get(key)
				want, existed := ref[key]
				if existed != (got != nil) {
					return false
				}
				if got != nil && got.Version != want {
					return false
				}
			}
		}
		if bt.size != len(ref) {
			return false
		}
		if bt.check() != "" {
			return false
		}
		// Full ascend must reproduce the reference exactly, in order.
		var keys []string
		bt.ascend("", func(k string, v *VersionedRecord) bool {
			if want, ok := ref[k]; !ok || v.Version != want {
				keys = nil
				return false
			}
			keys = append(keys, k)
			return true
		})
		return len(keys) == len(ref) && sort.StringsAreSorted(keys)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCompareKeys(t *testing.T) {
	if compareKeys("a", "b") >= 0 || compareKeys("b", "a") <= 0 || compareKeys("a", "a") != 0 {
		t.Error("compareKeys is not lexicographic")
	}
}

func BenchmarkBTreePut(b *testing.B) {
	bt := newBTree()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bt.put(fmt.Sprintf("key%010d", i%100000), rec(uint64(i)))
	}
}

func BenchmarkBTreeGet(b *testing.B) {
	bt := newBTree()
	for i := 0; i < 100000; i++ {
		bt.put(fmt.Sprintf("key%010d", i), rec(uint64(i)))
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bt.get(fmt.Sprintf("key%010d", i%100000))
	}
}
