package kvstore

import (
	"fmt"
	"sort"
	"sync"
)

// BulkKV is one record of a bulk load. Version and CommitTS are
// optional: zero values default to version 1 and a freshly drawn
// commit timestamp. Callers replaying a consistent cut from another
// store (backup seeding) pass both through so the copy preserves the
// source's versions and as-of visibility; the destination clock is
// advanced past the largest provided CommitTS. Deleted marks a
// tombstone: Ingest writes a delete version instead of fields, so a
// migrated slot carries its deletes along and a later copy back to a
// former owner cannot resurrect them. BulkLoad rejects tombstones (a
// fresh table has nothing to delete).
type BulkKV struct {
	Key      string
	Fields   map[string][]byte
	Version  uint64
	CommitTS int64
	Deleted  bool
}

// BulkLoad loads a sorted batch of records into an empty table by
// constructing each partition's B-tree bottom-up — the load-phase
// optimization YCSB++ added for HBase/Accumulo-style stores, which
// the YCSB+T paper cites as complementary work. Compared to
// sequential inserts it performs no node splits and writes each WAL
// frame exactly once, so the load phase of a large benchmark is
// dominated by I/O rather than tree maintenance. With multiple shards
// the batch is split by key hash and the partitions build (and log)
// concurrently.
//
// Keys must be strictly increasing and the table empty; records are
// stored at version 1. The emptiness precondition is checked without
// a store-wide lock and re-verified per partition, so two concurrent
// BulkLoads into the same table race: one fails with an error rather
// than clobbering the other, but the table may be left partially
// loaded. Run at most one load per table at a time.
func (s *Store) BulkLoad(table string, kvs []BulkKV) error {
	if s.parts[0].isClosed() {
		return ErrClosed
	}
	if n := s.Len(table); n > 0 {
		return fmt.Errorf("kvstore: bulk load into non-empty table %q (%d records)", table, n)
	}
	if !sort.SliceIsSorted(kvs, func(i, j int) bool { return kvs[i].Key < kvs[j].Key }) {
		return fmt.Errorf("kvstore: bulk load input not sorted")
	}
	for i := 1; i < len(kvs); i++ {
		if kvs[i].Key == kvs[i-1].Key {
			return fmt.Errorf("kvstore: duplicate key %q in bulk load", kvs[i].Key)
		}
	}
	for _, kv := range kvs {
		if kv.Deleted {
			return fmt.Errorf("kvstore: tombstone for %q in bulk load (deletes only make sense in Ingest)", kv.Key)
		}
	}
	if len(s.parts) == 1 {
		return s.parts[0].bulkLoad(table, kvs)
	}

	// Split by key hash; each partition's slice stays sorted because
	// it is a subsequence of sorted input.
	split := make([][]BulkKV, len(s.parts))
	for _, kv := range kvs {
		i := shardOf(kv.Key, len(s.parts))
		split[i] = append(split[i], kv)
	}
	errs := make([]error, len(s.parts))
	var wg sync.WaitGroup
	for i, p := range s.parts {
		wg.Add(1)
		go func(i int, p *partition, sub []BulkKV) {
			defer wg.Done()
			errs[i] = p.bulkLoad(table, sub)
		}(i, p, split[i])
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// bulkLoad builds this partition's tree bottom-up from its (sorted)
// share of the batch. The store-level emptiness check is re-verified
// here under p.mu so a racing load or insert cannot be silently
// clobbered by the unconditional tree swap below.
func (p *partition) bulkLoad(table string, kvs []BulkKV) error {
	p.mu.Lock()
	if p.closed.Load() {
		p.mu.Unlock()
		return ErrClosed
	}
	if t := p.tables[table]; t != nil && t.size > 0 {
		p.mu.Unlock()
		return fmt.Errorf("kvstore: bulk load raced a concurrent write to table %q (%d records)", table, t.size)
	}
	items := make([]item, len(kvs))
	var seq uint64
	w := p.wal // captured under p.mu: compact may swap p.wal after unlock
	for i, kv := range kvs {
		ver, ts := kv.Version, kv.CommitTS
		if ver == 0 {
			ver = 1
		}
		if ts == 0 {
			ts = p.store.nextTS()
		} else {
			p.store.advanceTS(ts)
		}
		rec := &VersionedRecord{Version: ver, CommitTS: ts, Fields: make(map[string][]byte, len(kv.Fields))}
		for f, v := range kv.Fields {
			rec.Fields[f] = append([]byte(nil), v...)
		}
		rec.link(nil)
		items[i] = item{key: kv.Key, val: rec}
		if w != nil {
			n, err := w.append(walRecord{Op: walPutTS, Table: table, Key: kv.Key, Version: ver, CommitTS: ts, Fields: rec.Fields})
			if err != nil {
				p.mu.Unlock()
				return err
			}
			seq = n
		}
	}
	t := buildBTree(items)
	p.tables[table] = t
	// One root swap exposes the whole load to the lock-free read path.
	p.publishLocked(table, t)
	p.mu.Unlock()
	if seq != 0 {
		// Group-commit + sync mode: one wait covers the whole batch.
		if err := w.waitDurable(seq); err != nil {
			return err
		}
	}
	return nil
}

// buildBTree constructs a valid B-tree from sorted items, level by
// level: leaves are packed to full fill, the separators between them
// become the next level's items, and underfull tail nodes borrow from
// their left sibling so every non-root node keeps ≥ t-1 items.
func buildBTree(items []item) *btree {
	t := &btree{size: len(items)}
	if len(items) == 0 {
		t.root = &node{}
		return t
	}
	const fill = 2*btreeMinDegree - 1

	// Level 0: pack leaves, reserving one separator item between
	// consecutive leaves.
	var level []*node
	var seps []item
	for i := 0; i < len(items); {
		end := i + fill
		if end > len(items) {
			end = len(items)
		}
		level = append(level, &node{items: append([]item(nil), items[i:end]...)})
		i = end
		if i < len(items) {
			seps = append(seps, items[i])
			i++
			// A separator must sit between two leaves; if it consumed
			// the final item, add the (empty) right leaf for
			// rebalanceTail to fill from its sibling.
			if i == len(items) {
				level = append(level, &node{})
			}
		}
	}
	rebalanceTail(level, seps)

	// Build parent levels until a single root remains.
	for len(level) > 1 {
		var parents []*node
		var parentSeps []item
		ci, si := 0, 0
		for ci < len(level) {
			p := &node{}
			p.children = append(p.children, level[ci])
			ci++
			for len(p.items) < fill && ci < len(level) && si < len(seps) {
				p.items = append(p.items, seps[si])
				si++
				p.children = append(p.children, level[ci])
				ci++
			}
			parents = append(parents, p)
			if ci < len(level) && si < len(seps) {
				parentSeps = append(parentSeps, seps[si])
				si++
			}
		}
		rebalanceTail(parents, parentSeps)
		level, seps = parents, parentSeps
	}
	t.root = level[0]
	return t
}

// rebalanceTail fixes the last node of a freshly built level when it
// is underfull: it redistributes items (and children) with its left
// sibling through their separator, leaving both with ≥ t-1 items.
func rebalanceTail(level []*node, seps []item) {
	n := len(level)
	if n < 2 {
		return
	}
	last, prev := level[n-1], level[n-2]
	if len(last.items) >= btreeMinDegree-1 {
		return
	}
	sep := &seps[n-2]
	// Merge prev + sep + last, then split evenly.
	all := append(append(append([]item(nil), prev.items...), *sep), last.items...)
	allKids := append(append([]*node(nil), prev.children...), last.children...)
	half := len(all) / 2
	prev.items = append([]item(nil), all[:half]...)
	*sep = all[half]
	last.items = append([]item(nil), all[half+1:]...)
	if len(allKids) > 0 {
		prev.children = append([]*node(nil), allKids[:half+1]...)
		last.children = append([]*node(nil), allKids[half+1:]...)
	}
}
