package kvstore

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
)

// Compact rewrites the write-ahead log as a snapshot of the store's
// current state, reclaiming the space of overwritten and deleted
// records. The snapshot is written to a temporary file, fsynced, and
// atomically renamed over the log, so a crash at any point leaves
// either the old log or the complete new one. No-op for in-memory
// stores.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.wal == nil {
		return nil
	}
	path := s.wal.f.Name()
	tmp := path + ".compact"

	f, err := os.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("kvstore: compacting: %w", err)
	}
	w := bufio.NewWriter(f)
	writeFrame := func(rec walRecord) error {
		payload := encodeWALRecord(rec)
		var header [8]byte
		binary.LittleEndian.PutUint32(header[:4], uint32(len(payload)))
		binary.LittleEndian.PutUint32(header[4:], crc32.ChecksumIEEE(payload))
		if _, err := w.Write(header[:]); err != nil {
			return err
		}
		_, err := w.Write(payload)
		return err
	}
	for table, tree := range s.tables {
		var werr error
		tree.ascend("", func(key string, val *VersionedRecord) bool {
			werr = writeFrame(walRecord{
				Op:      walPut,
				Table:   table,
				Key:     key,
				Version: val.Version,
				Fields:  val.Fields,
			})
			return werr == nil
		})
		if werr != nil {
			f.Close()
			os.Remove(tmp)
			return fmt.Errorf("kvstore: compacting: %w", werr)
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("kvstore: compacting: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("kvstore: compacting: %w", err)
	}

	// Swap the new log in: close the old handle, rename, reopen for
	// appending at the end.
	oldSync := s.wal.syncOn
	if err := s.wal.close(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("kvstore: compacting: closing old WAL: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("kvstore: compacting: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("kvstore: compacting: %w", err)
	}
	nw, err := openWAL(path, oldSync)
	if err != nil {
		return err
	}
	// Position for appending without replaying into the live store.
	if err := nw.seekEnd(); err != nil {
		nw.close()
		return err
	}
	s.wal = nw
	return nil
}

// WALSize reports the current log size in bytes (0 for in-memory
// stores); useful for deciding when to compact.
func (s *Store) WALSize() (int64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return 0, ErrClosed
	}
	if s.wal == nil {
		return 0, nil
	}
	if err := s.wal.w.Flush(); err != nil {
		return 0, err
	}
	st, err := s.wal.f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// seekEnd positions the WAL for appending at its current end.
func (w *wal) seekEnd() error {
	off, err := w.f.Seek(0, 2 /* io.SeekEnd */)
	if err != nil {
		return err
	}
	w.replayN = off
	w.w = bufio.NewWriter(w.f)
	return nil
}
