package kvstore

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"sync"
)

// Compact rewrites every WAL segment as a snapshot of its partition's
// current state, reclaiming the space of overwritten and deleted
// records. Partitions compact concurrently and independently: each
// snapshot is written to a temporary file, fsynced, and atomically
// renamed over the segment, so a crash at any point leaves either the
// old segment or the complete new one. If swapping the new segment in
// fails after the old WAL is closed, that partition is marked closed
// (operations on its keys return ErrClosed) — reopen the store to
// recover from the on-disk state. No-op for in-memory stores.
func (s *Store) Compact() error {
	if len(s.parts) == 1 {
		return s.parts[0].compact()
	}
	errs := make([]error, len(s.parts))
	var wg sync.WaitGroup
	for i, p := range s.parts {
		wg.Add(1)
		go func(i int, p *partition) {
			defer wg.Done()
			errs[i] = p.compact()
		}(i, p)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// compact rewrites this partition's segment under its write lock.
func (p *partition) compact() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed.Load() {
		return ErrClosed
	}
	if p.wal == nil {
		return nil
	}
	path := p.wal.f.Name()
	tmp := path + ".compact"

	f, err := os.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("kvstore: compacting: %w", err)
	}
	w := bufio.NewWriter(f)
	bp := walBufPool.Get().(*[]byte)
	defer walBufPool.Put(bp)
	writeFrame := func(rec walRecord) error {
		payload := appendWALRecord((*bp)[:0], rec)
		*bp = payload[:0] // keep the (possibly grown) buffer for reuse
		var header [8]byte
		binary.LittleEndian.PutUint32(header[:4], uint32(len(payload)))
		binary.LittleEndian.PutUint32(header[4:], crc32.ChecksumIEEE(payload))
		if _, err := w.Write(header[:]); err != nil {
			return err
		}
		_, err := w.Write(payload)
		return err
	}
	// Each key's version chain is rewritten oldest→newest so replay
	// relinks it in append order, preserving as-of reads across a
	// restart. Compaction applies the same reclaim horizon as Vacuum
	// while it rewrites: versions older than the newest one visible at
	// the cut are dropped, and keys whose head is a tombstone past the
	// cut vanish from the new segment entirely — so the log still
	// shrinks to (roughly) the retained state, not the full history.
	cut := p.store.cutTS(p.store.clock.Load())
	var chain []*VersionedRecord
	for table, tree := range p.tables {
		var werr error
		tree.ascend("", func(key string, val *VersionedRecord) bool {
			if val.deleted && val.CommitTS <= cut {
				return true // expired tombstone head: drop the key entirely
			}
			chain = chain[:0]
			for v := val; v != nil; v = v.Prev() {
				chain = append(chain, v)
				if v.CommitTS <= cut {
					break // newest version ≤ cut closes the retained suffix
				}
			}
			for i := len(chain) - 1; i >= 0; i-- {
				v := chain[i]
				rec := walRecord{
					Op:       walPutTS,
					Table:    table,
					Key:      key,
					Version:  v.Version,
					CommitTS: v.CommitTS,
					Fields:   v.Fields,
				}
				if v.deleted {
					rec.Op, rec.Fields = walDeleteTS, nil
				}
				if werr = writeFrame(rec); werr != nil {
					return false
				}
			}
			return true
		})
		if werr != nil {
			f.Close()
			os.Remove(tmp)
			return fmt.Errorf("kvstore: compacting: %w", werr)
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("kvstore: compacting: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("kvstore: compacting: %w", err)
	}

	// Swap the new segment in: close the old handle, rename, reopen
	// for appending at the end (restarting the group-commit syncer
	// when one is configured). Once the old WAL is closed the
	// partition has no live log: any failure before the new one is
	// installed marks the partition closed, so later mutations fail
	// fast instead of buffering into a closed file (or, in
	// group-commit mode, blocking forever on a syncer that exited).
	oldSync, oldGC, oldMetrics := p.wal.syncOn, p.wal.gcInterval, p.wal.metrics
	if err := p.wal.close(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("kvstore: compacting: closing old WAL: %w", err)
	}
	if err := f.Close(); err != nil {
		p.closed.Store(true)
		os.Remove(tmp)
		return fmt.Errorf("kvstore: compacting: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		p.closed.Store(true)
		return fmt.Errorf("kvstore: compacting: %w", err)
	}
	nw, err := openWAL(path, oldSync, oldGC)
	if err != nil {
		p.closed.Store(true)
		return err
	}
	// The fresh segment inherits the shard's metric handles so the
	// fsync series stays continuous across compactions.
	nw.metrics = oldMetrics
	// Position for appending without replaying into the live store.
	if err := nw.seekEnd(); err != nil {
		p.closed.Store(true)
		nw.close()
		return err
	}
	p.wal = nw
	p.metrics.compactions.Inc()
	return nil
}

// WALSize reports the current total log size in bytes across all
// segments (0 for in-memory stores); useful for deciding when to
// compact.
func (s *Store) WALSize() (int64, error) {
	var total int64
	for _, p := range s.parts {
		n, err := p.walSize()
		if err != nil {
			return 0, err
		}
		total += n
	}
	return total, nil
}
