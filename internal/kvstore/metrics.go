package kvstore

import (
	"strconv"

	"ycsbt/internal/obs"
)

// partMetrics holds one partition's private metric handles. Handles
// are obs single-writer cells allocated per shard, so partitions never
// share a metric cache line; every method is a no-op on the zero value
// (nil handles), which is what partitions carry when Options.Metrics
// is unset.
type partMetrics struct {
	gets        *obs.CounterHandle
	puts        *obs.CounterHandle
	deletes     *obs.CounterHandle
	scans       *obs.CounterHandle
	compactions *obs.CounterHandle

	// Snapshot read-path series: root swaps published by writers, the
	// length of each lock-free snapshot scan, and the estimated number
	// of B-tree nodes retired per publish (the copied root-to-leaf
	// path, i.e. tree depth) — a proxy for the garbage the COW write
	// path hands to the collector in place of epoch reclamation.
	rootSwaps    *obs.CounterHandle
	retiredNodes *obs.CounterHandle
	snapScanLen  *obs.HistogramHandle

	// MVCC series: the length of each key's version chain observed at
	// write/vacuum time, and versions reclaimed (write-path retention
	// trims plus Vacuum cuts and tombstone purges).
	chainLen *obs.HistogramHandle
	vacuumed *obs.CounterHandle
}

// walMetrics instruments one WAL segment. Compaction swaps the wal
// object but hands the same metrics block to the replacement, so a
// shard's fsync series is continuous across compactions.
type walMetrics struct {
	// fsync observes the duration of every fsync (inline or group),
	// in seconds.
	fsync *obs.HistogramHandle
	// occupancy observes how many appended frames each group-commit
	// sync covered — the batch size the group commit actually achieved.
	occupancy *obs.HistogramHandle
}

// instrument registers the engine series on reg and hands every
// partition and WAL its private handles. A nil registry leaves all
// handles nil (inert). Called once from Open, before the store is
// shared.
func (s *Store) instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.Help("kvstore_ops_total", "Engine operations started, by kind and shard.")
	reg.Help("kvstore_wal_fsync_seconds", "WAL fsync latency per shard.")
	reg.Help("kvstore_wal_group_commit_frames", "Frames covered by each group-commit sync, per shard.")
	reg.Help("kvstore_compactions_total", "Completed WAL segment compactions, by shard.")
	reg.Help("kvstore_wal_bytes", "Total WAL size across all segments.")
	reg.Help("kvstore_snapshot_root_swaps_total", "B-tree roots atomically published to the lock-free read path, by shard.")
	reg.Help("kvstore_snapshot_retired_nodes_total", "Estimated B-tree nodes retired to the GC by copy-on-write publishes, by shard.")
	reg.Help("kvstore_snapshot_scan_len", "Records returned per lock-free snapshot scan, by shard.")
	reg.Help("kvstore_version_chain_len", "Version-chain length per key observed at write and vacuum time, by shard.")
	reg.Help("kvstore_versions_vacuumed_total", "Record versions reclaimed by retention trims and vacuum, by shard.")
	for i, p := range s.parts {
		sh := strconv.Itoa(i)
		p.metrics = partMetrics{
			gets:         reg.Counter("kvstore_ops_total", "op", "get", "shard", sh).Handle(),
			puts:         reg.Counter("kvstore_ops_total", "op", "put", "shard", sh).Handle(),
			deletes:      reg.Counter("kvstore_ops_total", "op", "delete", "shard", sh).Handle(),
			scans:        reg.Counter("kvstore_ops_total", "op", "scan", "shard", sh).Handle(),
			compactions:  reg.Counter("kvstore_compactions_total", "shard", sh).Handle(),
			rootSwaps:    reg.Counter("kvstore_snapshot_root_swaps_total", "shard", sh).Handle(),
			retiredNodes: reg.Counter("kvstore_snapshot_retired_nodes_total", "shard", sh).Handle(),
			snapScanLen:  reg.Histogram("kvstore_snapshot_scan_len", obs.CountBuckets, "shard", sh).Handle(),
			chainLen:     reg.Histogram("kvstore_version_chain_len", obs.CountBuckets, "shard", sh).Handle(),
			vacuumed:     reg.Counter("kvstore_versions_vacuumed_total", "shard", sh).Handle(),
		}
		if p.wal != nil {
			p.wal.metrics = &walMetrics{
				fsync:     reg.Histogram("kvstore_wal_fsync_seconds", obs.DurationBuckets, "shard", sh).Handle(),
				occupancy: reg.Histogram("kvstore_wal_group_commit_frames", obs.CountBuckets, "shard", sh).Handle(),
			}
		}
	}
	reg.GaugeFunc("kvstore_wal_bytes", func() float64 {
		n, err := s.WALSize()
		if err != nil {
			return 0
		}
		return float64(n)
	})
}
