package kvstore

import "time"

// Vacuum trims MVCC garbage across every partition: each key's chain
// is cut after the newest version at or below the reclaim horizon
// (now − retention, clamped by pins and the external watermark), and
// keys whose head is an expired tombstone are removed from the tree
// entirely. It returns the number of versions unlinked and keys
// purged.
//
// The chain cuts are lock-free (one atomic prev store per cut — a
// reader pinned at or above the horizon can still reach every version
// it needs); only the tombstone purge briefly takes each partition's
// write lock, in one batch per partition.
func (s *Store) Vacuum() (versions int64, keys int) {
	cut := s.cutTS(s.nextTS())
	for _, p := range s.parts {
		v, k := p.vacuum(cut)
		versions += v
		keys += k
	}
	return versions, keys
}

// startVacuumLoop runs Vacuum on the given period until Close.
func (s *Store) startVacuumLoop(interval time.Duration) {
	if interval <= 0 {
		return
	}
	s.vacStop = make(chan struct{})
	s.vacDone = make(chan struct{})
	go func() {
		defer close(s.vacDone)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-s.vacStop:
				return
			case <-t.C:
				s.Vacuum()
			}
		}
	}()
}

func (s *Store) stopVacuumLoop() {
	if s.vacStop == nil {
		return
	}
	s.vacOnce.Do(func() {
		close(s.vacStop)
		<-s.vacDone
	})
}

// cutChainAt unlinks everything older than the newest version ≤ cut,
// returning how many versions were dropped. Safe without the
// partition lock: the cut is a single atomic store, and concurrent
// walkers see either the full or the cut chain — both valid for any
// read at or above the cut.
func cutChainAt(head *VersionedRecord, cut int64) int64 {
	for v := head; v != nil; v = v.prev.Load() {
		if v.CommitTS > cut {
			continue
		}
		// v is the newest version ≤ cut: keep it, drop the rest.
		var dropped int64
		for d := v.prev.Load(); d != nil; d = d.prev.Load() {
			dropped++
		}
		if dropped > 0 {
			v.prev.Store(nil)
		}
		return dropped
	}
	return 0
}

// vacuum sweeps one partition at the given horizon.
func (p *partition) vacuum(cut int64) (int64, int) {
	if p.closed.Load() {
		return 0, 0
	}
	type deadKey struct{ table, key string }
	var dead []deadKey
	var versions int64
	set := p.snaps.Load()
	for name, slot := range set.tables {
		snap := slot.snap.Load()
		if snap == nil {
			continue
		}
		snap.ascend("", func(key string, head *VersionedRecord) bool {
			versions += cutChainAt(head, cut)
			if head.deleted && head.CommitTS <= cut {
				dead = append(dead, deadKey{table: name, key: key})
			}
			p.metrics.chainLen.Observe(float64(chainLength(head)))
			return true
		})
	}
	keys := 0
	if len(dead) > 0 {
		p.mu.Lock()
		if p.closed.Load() {
			p.mu.Unlock()
			p.metrics.vacuumed.Add(versions)
			return versions, 0
		}
		touched := make(map[string]bool, 1)
		for _, dk := range dead {
			t := p.tables[dk.table]
			if t == nil {
				continue
			}
			// Re-check under the lock: the key may have been written
			// again (resurrected) since the snapshot was collected.
			cur := t.get(dk.key)
			if cur == nil || !cur.deleted || cur.CommitTS > cut {
				continue
			}
			t.delete(dk.key)
			keys++
			touched[dk.table] = true
		}
		for name := range touched {
			p.publishLocked(name, p.tables[name])
		}
		p.mu.Unlock()
	}
	// A purged key drops its tombstone version too; the purge is not
	// WAL-logged (the tombstone frame already is — a restart rebuilds
	// it and the next sweep purges it again), and Compact rewrites the
	// log without it.
	p.metrics.vacuumed.Add(versions + int64(keys))
	return versions, keys
}

// chainLength counts the versions currently reachable from head.
func chainLength(head *VersionedRecord) int {
	n := 0
	for v := head; v != nil; v = v.prev.Load() {
		n++
	}
	return n
}
