package kvstore

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// WAL op codes.
const (
	walPut byte = iota + 1
	walDelete
)

// walRecord is one logged mutation. Put records carry the full
// post-image (version and fields) so replay is a blind apply; delete
// records carry only the key.
type walRecord struct {
	Op      byte
	Table   string
	Key     string
	Version uint64
	Fields  map[string][]byte
}

// wal is an append-only redo log with per-record CRC32 checksums.
// Frame layout:
//
//	[4-byte length][4-byte CRC32(payload)][payload]
//
// Payload layout (all integers little-endian, strings/bytes
// length-prefixed with uvarint):
//
//	op(1) table key version nfields {fieldName fieldValue}*
//
// A torn final frame (crash mid-append) is detected by length or CRC
// mismatch and truncated away on open, so a crashed store reopens to
// its last complete mutation.
type wal struct {
	f       *os.File
	w       *bufio.Writer
	syncOn  bool
	replayN int64 // bytes of valid replayed prefix
}

func openWAL(path string, syncWrites bool) (*wal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("kvstore: opening WAL: %w", err)
	}
	return &wal{f: f, syncOn: syncWrites}, nil
}

// replay streams every complete record to fn, then positions the file
// for appending, truncating any torn tail.
func (w *wal) replay(fn func(walRecord) error) error {
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	r := bufio.NewReader(w.f)
	var offset int64
	var header [8]byte
	for {
		if _, err := io.ReadFull(r, header[:]); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				break // torn or clean end
			}
			return err
		}
		length := binary.LittleEndian.Uint32(header[:4])
		sum := binary.LittleEndian.Uint32(header[4:])
		if length > 1<<30 {
			break // corrupt length; treat as torn tail
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(r, payload); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				break
			}
			return err
		}
		if crc32.ChecksumIEEE(payload) != sum {
			break // corrupt record; stop at last good prefix
		}
		rec, err := decodeWALRecord(payload)
		if err != nil {
			break
		}
		if err := fn(rec); err != nil {
			return err
		}
		offset += int64(8 + len(payload))
	}
	w.replayN = offset
	if err := w.f.Truncate(offset); err != nil {
		return err
	}
	if _, err := w.f.Seek(offset, io.SeekStart); err != nil {
		return err
	}
	w.w = bufio.NewWriter(w.f)
	return nil
}

func (w *wal) append(rec walRecord) error {
	payload := encodeWALRecord(rec)
	var header [8]byte
	binary.LittleEndian.PutUint32(header[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(header[4:], crc32.ChecksumIEEE(payload))
	if _, err := w.w.Write(header[:]); err != nil {
		return fmt.Errorf("kvstore: WAL append: %w", err)
	}
	if _, err := w.w.Write(payload); err != nil {
		return fmt.Errorf("kvstore: WAL append: %w", err)
	}
	if w.syncOn {
		return w.syncLocked()
	}
	return nil
}

func (w *wal) sync() error { return w.syncLocked() }

func (w *wal) syncLocked() error {
	if err := w.w.Flush(); err != nil {
		return err
	}
	return w.f.Sync()
}

func (w *wal) close() error {
	if w.w != nil {
		if err := w.w.Flush(); err != nil {
			w.f.Close()
			return err
		}
	}
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

func encodeWALRecord(rec walRecord) []byte {
	buf := make([]byte, 0, 64+len(rec.Table)+len(rec.Key))
	buf = append(buf, rec.Op)
	buf = appendString(buf, rec.Table)
	buf = appendString(buf, rec.Key)
	buf = binary.AppendUvarint(buf, rec.Version)
	buf = binary.AppendUvarint(buf, uint64(len(rec.Fields)))
	for f, v := range rec.Fields {
		buf = appendString(buf, f)
		buf = appendBytes(buf, v)
	}
	return buf
}

func decodeWALRecord(payload []byte) (walRecord, error) {
	var rec walRecord
	if len(payload) < 1 {
		return rec, errors.New("kvstore: empty WAL payload")
	}
	rec.Op = payload[0]
	rest := payload[1:]
	var err error
	if rec.Table, rest, err = readString(rest); err != nil {
		return rec, err
	}
	if rec.Key, rest, err = readString(rest); err != nil {
		return rec, err
	}
	var n int
	rec.Version, n = binary.Uvarint(rest)
	if n <= 0 {
		return rec, errors.New("kvstore: bad WAL version")
	}
	rest = rest[n:]
	nf, n := binary.Uvarint(rest)
	if n <= 0 {
		return rec, errors.New("kvstore: bad WAL field count")
	}
	rest = rest[n:]
	if nf > 0 {
		rec.Fields = make(map[string][]byte, nf)
		for i := uint64(0); i < nf; i++ {
			var name string
			if name, rest, err = readString(rest); err != nil {
				return rec, err
			}
			var val []byte
			if val, rest, err = readBytes(rest); err != nil {
				return rec, err
			}
			rec.Fields[name] = val
		}
	}
	if len(rest) != 0 {
		return rec, errors.New("kvstore: trailing WAL bytes")
	}
	return rec, nil
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func appendBytes(buf, b []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(b)))
	return append(buf, b...)
}

func readString(buf []byte) (string, []byte, error) {
	b, rest, err := readBytes(buf)
	return string(b), rest, err
}

func readBytes(buf []byte) ([]byte, []byte, error) {
	l, n := binary.Uvarint(buf)
	if n <= 0 || uint64(len(buf)-n) < l {
		return nil, nil, errors.New("kvstore: truncated WAL field")
	}
	return buf[n : n+int(l)], buf[n+int(l):], nil
}
