package kvstore

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"time"
)

// WAL op codes. walPut/walDelete are the legacy pre-MVCC frames
// (still replayed for old logs); walPutTS/walDeleteTS additionally
// carry the commit timestamp so replay rebuilds version chains. New
// fields need new op codes because decodeWALRecord rejects trailing
// bytes — that strictness is what keeps old binaries from silently
// misreading new frames.
const (
	walPut byte = iota + 1
	walDelete
	walPutTS
	walDeleteTS
)

// walRecord is one logged mutation. Put records carry the full
// post-image (version and fields) so replay is a blind apply; delete
// records carry the key and (in TS form) the tombstone's version and
// commit ts.
type walRecord struct {
	Op       byte
	Table    string
	Key      string
	Version  uint64
	CommitTS int64
	Fields   map[string][]byte
}

// wal is an append-only redo log with per-record CRC32 checksums.
// Frame layout:
//
//	[4-byte length][4-byte CRC32(payload)][payload]
//
// Payload layout (all integers little-endian, strings/bytes
// length-prefixed with uvarint):
//
//	op(1) table key version [commitTS] nfields {fieldName fieldValue}*
//
// where commitTS (uvarint) is present only for the TS op codes.
//
// A torn final frame (crash mid-append) is detected by length or CRC
// mismatch and truncated away on open, so a crashed store reopens to
// its last complete mutation.
//
// With a group-commit window (gcInterval > 0) a background syncer
// flushes and fsyncs the log once per window. Appends then never sync
// inline; when SyncWrites is also set, the caller waits for the group
// sync that covers its frame instead — one fsync amortized over every
// commit of the window, the classic group-commit trade.
type wal struct {
	syncOn bool

	mu      sync.Mutex // guards f and w against the group-commit syncer
	f       *os.File
	w       *bufio.Writer
	replayN int64 // bytes of valid replayed prefix

	// Group-commit state. appendSeq counts buffered frames; syncSeq is
	// the highest frame covered by a completed fsync. syncErr is sticky:
	// once a group sync fails every waiter gets the error.
	gcInterval time.Duration
	gcMu       sync.Mutex
	gcCond     *sync.Cond
	appendSeq  uint64
	syncSeq    uint64
	syncErr    error
	gcStop     chan struct{}
	gcDone     chan struct{}

	// metrics instruments fsync latency and group-commit occupancy;
	// nil when the store is uninstrumented. Set before the wal is
	// shared (Store.instrument / compact's swap), read-only after.
	metrics *walMetrics
}

func openWAL(path string, syncWrites bool, groupCommit time.Duration) (*wal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("kvstore: opening WAL: %w", err)
	}
	return &wal{f: f, syncOn: syncWrites, gcInterval: groupCommit}, nil
}

// replay streams every complete record to fn, then positions the file
// for appending, truncating any torn tail, and starts the group-commit
// syncer when one is configured.
func (w *wal) replay(fn func(walRecord) error) error {
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	r := bufio.NewReader(w.f)
	var offset int64
	var header [8]byte
	for {
		if _, err := io.ReadFull(r, header[:]); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				break // torn or clean end
			}
			return err
		}
		length := binary.LittleEndian.Uint32(header[:4])
		sum := binary.LittleEndian.Uint32(header[4:])
		if length > 1<<30 {
			break // corrupt length; treat as torn tail
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(r, payload); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				break
			}
			return err
		}
		if crc32.ChecksumIEEE(payload) != sum {
			break // corrupt record; stop at last good prefix
		}
		rec, err := decodeWALRecord(payload)
		if err != nil {
			break
		}
		if err := fn(rec); err != nil {
			return err
		}
		offset += int64(8 + len(payload))
	}
	w.replayN = offset
	if err := w.f.Truncate(offset); err != nil {
		return err
	}
	if _, err := w.f.Seek(offset, io.SeekStart); err != nil {
		return err
	}
	w.w = bufio.NewWriter(w.f)
	w.startSyncer()
	return nil
}

// seekEnd positions the WAL for appending at its current end without
// replaying (used after compaction swaps a fresh snapshot in).
func (w *wal) seekEnd() error {
	off, err := w.f.Seek(0, io.SeekEnd)
	if err != nil {
		return err
	}
	w.replayN = off
	w.w = bufio.NewWriter(w.f)
	w.startSyncer()
	return nil
}

// walBufPool recycles WAL encode buffers across appends: the record is
// encoded into a pooled scratch buffer that is fully consumed (written
// to the bufio writer) before the append returns, so the hot write
// path allocates no per-record encode buffer at steady state. Buffers
// grow to fit the largest record they ever carry and are reused at
// that capacity.
var walBufPool = sync.Pool{New: func() any { b := make([]byte, 0, 1024); return &b }}

// append buffers one frame. It returns a non-zero sequence number when
// the caller must wait for durability via waitDurable — that is, when
// both SyncWrites and a group-commit window are configured. Without a
// window, SyncWrites syncs inline exactly as before.
func (w *wal) append(rec walRecord) (uint64, error) {
	bp := walBufPool.Get().(*[]byte)
	payload := appendWALRecord((*bp)[:0], rec)
	*bp = payload[:0] // keep the (possibly grown) buffer for reuse
	defer walBufPool.Put(bp)
	var header [8]byte
	binary.LittleEndian.PutUint32(header[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(header[4:], crc32.ChecksumIEEE(payload))
	w.mu.Lock()
	if _, err := w.w.Write(header[:]); err != nil {
		w.mu.Unlock()
		return 0, fmt.Errorf("kvstore: WAL append: %w", err)
	}
	if _, err := w.w.Write(payload); err != nil {
		w.mu.Unlock()
		return 0, fmt.Errorf("kvstore: WAL append: %w", err)
	}
	w.mu.Unlock()
	if w.gcInterval > 0 {
		// The frame is buffered before the sequence is published, so a
		// group sync that observes seq N has frames 1..N in the buffer.
		w.gcMu.Lock()
		w.appendSeq++
		seq := w.appendSeq
		w.gcMu.Unlock()
		if w.syncOn {
			return seq, nil
		}
		return 0, nil
	}
	if w.syncOn {
		return 0, w.sync()
	}
	return 0, nil
}

// waitDurable blocks until the group-commit syncer has fsynced the
// frame with the given sequence number (or a sync failed).
func (w *wal) waitDurable(seq uint64) error {
	w.gcMu.Lock()
	defer w.gcMu.Unlock()
	for w.syncSeq < seq && w.syncErr == nil {
		w.gcCond.Wait()
	}
	return w.syncErr
}

// startSyncer launches the group-commit goroutine when a window is
// configured. Called once per open/seekEnd, before any appends.
func (w *wal) startSyncer() {
	if w.gcInterval <= 0 {
		return
	}
	w.gcCond = sync.NewCond(&w.gcMu)
	w.gcStop = make(chan struct{})
	w.gcDone = make(chan struct{})
	go w.syncLoop()
}

func (w *wal) syncLoop() {
	defer close(w.gcDone)
	tick := time.NewTicker(w.gcInterval)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			w.groupSync()
		case <-w.gcStop:
			w.groupSync() // cover appends still waiting at close
			return
		}
	}
}

// groupSync fsyncs everything appended so far and wakes the waiters it
// covered.
func (w *wal) groupSync() {
	w.gcMu.Lock()
	target := w.appendSeq
	covered := target - w.syncSeq
	if target == w.syncSeq || w.syncErr != nil {
		w.gcMu.Unlock()
		return
	}
	w.gcMu.Unlock()
	w.mu.Lock()
	err := w.flushAndSync()
	w.mu.Unlock()
	w.gcMu.Lock()
	if err != nil {
		w.syncErr = err
	} else {
		w.syncSeq = target
	}
	w.gcCond.Broadcast()
	w.gcMu.Unlock()
	if err == nil && w.metrics != nil {
		w.metrics.occupancy.Observe(float64(covered))
	}
}

func (w *wal) sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.flushAndSync()
}

// flushAndSync requires w.mu.
func (w *wal) flushAndSync() error {
	if err := w.w.Flush(); err != nil {
		return err
	}
	if w.metrics == nil {
		return w.f.Sync()
	}
	start := time.Now()
	err := w.f.Sync()
	if err == nil {
		w.metrics.fsync.Observe(time.Since(start).Seconds())
	}
	return err
}

// size reports the flushed log size in bytes.
func (w *wal) size() (int64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.w.Flush(); err != nil {
		return 0, err
	}
	st, err := w.f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

func (w *wal) close() error {
	if w.gcDone != nil {
		close(w.gcStop)
		<-w.gcDone
		w.gcDone = nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.w != nil {
		if err := w.w.Flush(); err != nil {
			w.f.Close()
			return err
		}
	}
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

func encodeWALRecord(rec walRecord) []byte {
	return appendWALRecord(make([]byte, 0, 64+len(rec.Table)+len(rec.Key)), rec)
}

// appendWALRecord encodes rec onto buf (the append-style core shared
// by the pooled hot path and encodeWALRecord).
func appendWALRecord(buf []byte, rec walRecord) []byte {
	buf = append(buf, rec.Op)
	buf = appendString(buf, rec.Table)
	buf = appendString(buf, rec.Key)
	buf = binary.AppendUvarint(buf, rec.Version)
	if rec.Op == walPutTS || rec.Op == walDeleteTS {
		buf = binary.AppendUvarint(buf, uint64(rec.CommitTS))
	}
	buf = binary.AppendUvarint(buf, uint64(len(rec.Fields)))
	for f, v := range rec.Fields {
		buf = appendString(buf, f)
		buf = appendBytes(buf, v)
	}
	return buf
}

func decodeWALRecord(payload []byte) (walRecord, error) {
	var rec walRecord
	if len(payload) < 1 {
		return rec, errors.New("kvstore: empty WAL payload")
	}
	rec.Op = payload[0]
	rest := payload[1:]
	var err error
	if rec.Table, rest, err = readString(rest); err != nil {
		return rec, err
	}
	if rec.Key, rest, err = readString(rest); err != nil {
		return rec, err
	}
	var n int
	rec.Version, n = binary.Uvarint(rest)
	if n <= 0 {
		return rec, errors.New("kvstore: bad WAL version")
	}
	rest = rest[n:]
	if rec.Op == walPutTS || rec.Op == walDeleteTS {
		ts, n := binary.Uvarint(rest)
		if n <= 0 {
			return rec, errors.New("kvstore: bad WAL commit ts")
		}
		rec.CommitTS = int64(ts)
		rest = rest[n:]
	}
	nf, n := binary.Uvarint(rest)
	if n <= 0 {
		return rec, errors.New("kvstore: bad WAL field count")
	}
	rest = rest[n:]
	if nf > 0 {
		rec.Fields = make(map[string][]byte, nf)
		for i := uint64(0); i < nf; i++ {
			var name string
			if name, rest, err = readString(rest); err != nil {
				return rec, err
			}
			var val []byte
			if val, rest, err = readBytes(rest); err != nil {
				return rec, err
			}
			rec.Fields[name] = val
		}
	}
	if len(rest) != 0 {
		return rec, errors.New("kvstore: trailing WAL bytes")
	}
	return rec, nil
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func appendBytes(buf, b []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(b)))
	return append(buf, b...)
}

func readString(buf []byte) (string, []byte, error) {
	b, rest, err := readBytes(buf)
	return string(b), rest, err
}

func readBytes(buf []byte) ([]byte, []byte, error) {
	l, n := binary.Uvarint(buf)
	if n <= 0 || uint64(len(buf)-n) < l {
		return nil, nil, errors.New("kvstore: truncated WAL field")
	}
	return buf[n : n+int(l)], buf[n+int(l):], nil
}
