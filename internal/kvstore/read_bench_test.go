package kvstore

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// Read-scaling benchmarks for the lock-free snapshot read path, run as
//
//	go test -bench 'ReadHeavy|GetScanParallel' -cpu 1,4,16,32 ./internal/kvstore
//
// Each benchmark has two sub-paths: "new" exercises the engine
// directly (wait-free snapshot reads, no clone), "old" reproduces the
// seed engine's read path on top of it — a per-shard RWMutex around
// every operation plus a deep clone of every returned record — so the
// before/after comparison stays runnable after the old path is gone.

const benchReadKeys = 100_000

func populatedStore(b *testing.B, shards int) (*Store, []string) {
	b.Helper()
	s := OpenMemoryShards(shards)
	keys := make([]string, benchReadKeys)
	for i := range keys {
		keys[i] = fmt.Sprintf("user%06d", i)
		if _, err := s.Put("t", keys[i], map[string][]byte{
			"field0": []byte("value-of-a-realistic-length-000"),
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.Cleanup(func() { s.Close() })
	return s, keys
}

// seedPathStore emulates the pre-snapshot engine's read path: every
// operation takes the key's per-shard RWMutex (writes exclusively) and
// every returned record is deep-cloned, exactly the two costs the
// lock-free snapshot path removed. It runs over the current engine so
// the tree maintenance underneath is identical in both sub-paths.
type seedPathStore struct {
	s  *Store
	mu []sync.RWMutex
}

func newSeedPathStore(s *Store) *seedPathStore {
	return &seedPathStore{s: s, mu: make([]sync.RWMutex, s.Shards())}
}

func (l *seedPathStore) lockFor(key string) *sync.RWMutex {
	return &l.mu[shardOf(key, len(l.mu))]
}

func (l *seedPathStore) get(table, key string) (*VersionedRecord, error) {
	m := l.lockFor(key)
	m.RLock()
	defer m.RUnlock()
	rec, err := l.s.Get(table, key)
	if err != nil {
		return nil, err
	}
	return rec.Clone(), nil
}

func (l *seedPathStore) put(table, key string, fields map[string][]byte) error {
	m := l.lockFor(key)
	m.Lock()
	defer m.Unlock()
	_, err := l.s.Put(table, key, fields)
	return err
}

func (l *seedPathStore) scan(table, start string, count int) ([]VersionedKV, error) {
	for i := range l.mu {
		l.mu[i].RLock()
	}
	defer func() {
		for i := range l.mu {
			l.mu[i].RUnlock()
		}
	}()
	kvs, err := l.s.Scan(table, start, count)
	if err != nil {
		return nil, err
	}
	for i := range kvs {
		kvs[i].Record = kvs[i].Record.Clone()
	}
	return kvs, nil
}

// TestGetZeroAlloc pins the acceptance criterion: a hit on the
// snapshot Get path performs zero heap allocations.
func TestGetZeroAlloc(t *testing.T) {
	s := OpenMemoryShards(4)
	defer s.Close()
	keys := make([]string, 1024)
	for i := range keys {
		keys[i] = fmt.Sprintf("user%06d", i)
		if _, err := s.Put("t", keys[i], fields("v")); err != nil {
			t.Fatal(err)
		}
	}
	var i int
	allocs := testing.AllocsPerRun(4096, func() {
		rec, err := s.Get("t", keys[i%len(keys)])
		if err != nil || rec == nil {
			t.Fatal(err)
		}
		i++
	})
	if allocs != 0 {
		t.Fatalf("Get allocates %.1f objects/op, want 0", allocs)
	}
}

// BenchmarkReadHeavy is a 95/5 get/put mix over a populated table —
// the read-dominated YCSB shape the paper's Tier-5 runs use.
func BenchmarkReadHeavy(b *testing.B) {
	for _, path := range []string{"new", "old"} {
		b.Run(path, func(b *testing.B) {
			s, keys := populatedStore(b, 8)
			old := newSeedPathStore(s)
			val := map[string][]byte{"field0": []byte("updated-value-0000000000000000")}
			var ctr atomic.Uint64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				n := ctr.Add(1) * 7919
				for pb.Next() {
					n++
					key := keys[int(n%benchReadKeys)]
					if n%20 == 0 {
						if path == "new" {
							if _, err := s.Put("t", key, val); err != nil {
								b.Fatal(err)
							}
						} else if err := old.put("t", key, val); err != nil {
							b.Fatal(err)
						}
						continue
					}
					var rec *VersionedRecord
					var err error
					if path == "new" {
						rec, err = s.Get("t", key)
					} else {
						rec, err = old.get("t", key)
					}
					if err != nil || rec == nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

// BenchmarkGetScanParallel mixes point gets with short ordered scans
// (90/10), the CEW read-modify-write pre-read plus validation shape.
func BenchmarkGetScanParallel(b *testing.B) {
	for _, path := range []string{"new", "old"} {
		b.Run(path, func(b *testing.B) {
			s, keys := populatedStore(b, 8)
			old := newSeedPathStore(s)
			var ctr atomic.Uint64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				n := ctr.Add(1) * 104729
				for pb.Next() {
					n++
					key := keys[int(n%benchReadKeys)]
					if n%10 == 0 {
						var kvs []VersionedKV
						var err error
						if path == "new" {
							kvs, err = s.Scan("t", key, 10)
						} else {
							kvs, err = old.scan("t", key, 10)
						}
						if err != nil || len(kvs) == 0 {
							b.Fatalf("scan from %s: %d records, %v", key, len(kvs), err)
						}
						continue
					}
					var rec *VersionedRecord
					var err error
					if path == "new" {
						rec, err = s.Get("t", key)
					} else {
						rec, err = old.get("t", key)
					}
					if err != nil || rec == nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}
