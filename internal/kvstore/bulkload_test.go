package kvstore

import (
	"fmt"
	"path/filepath"
	"sort"
	"testing"
	"testing/quick"
)

// checkTrees runs the B-tree invariant checker on table's tree in
// every partition, returning the first violation ("" = all valid).
func checkTrees(s *Store, table string) string {
	for i, p := range s.parts {
		p.mu.RLock()
		t := p.tables[table]
		var msg string
		if t != nil {
			msg = t.check()
		}
		p.mu.RUnlock()
		if msg != "" {
			return fmt.Sprintf("partition %d: %s", i, msg)
		}
	}
	return ""
}

func bulkKVs(n int) []BulkKV {
	out := make([]BulkKV, n)
	for i := range out {
		out[i] = BulkKV{
			Key:    fmt.Sprintf("key%08d", i),
			Fields: map[string][]byte{"field0": []byte(fmt.Sprint(i))},
		}
	}
	return out
}

func TestBulkLoadBasic(t *testing.T) {
	s := OpenMemory()
	defer s.Close()
	const n = 5000
	if err := s.BulkLoad("t", bulkKVs(n)); err != nil {
		t.Fatal(err)
	}
	if s.Len("t") != n {
		t.Fatalf("Len = %d", s.Len("t"))
	}
	// Point reads, ordering and versions all intact.
	rec, err := s.Get("t", "key00001234")
	if err != nil {
		t.Fatal(err)
	}
	if string(rec.Fields["field0"]) != "1234" || rec.Version != 1 {
		t.Errorf("record = %+v", rec)
	}
	kvs, err := s.Scan("t", "", -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != n {
		t.Fatalf("scan = %d records", len(kvs))
	}
	for i := 1; i < len(kvs); i++ {
		if kvs[i-1].Key >= kvs[i].Key {
			t.Fatal("scan out of order after bulk load")
		}
	}
	// Tree invariants hold in every partition.
	if msg := checkTrees(s, "t"); msg != "" {
		t.Errorf("B-tree invariant violated after bulk load: %s", msg)
	}
	// Subsequent mutations behave normally.
	if _, err := s.Put("t", "key00001234", fields("updated")); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("t", "key00000000"); err != nil {
		t.Fatal(err)
	}
}

// Property: bulk load of any size produces a valid tree holding
// exactly the input, including the tail-rebalancing edge sizes.
func TestBulkLoadSizesQuick(t *testing.T) {
	check := func(n int) error {
		s := OpenMemory()
		defer s.Close()
		if err := s.BulkLoad("t", bulkKVs(n)); err != nil {
			return fmt.Errorf("n=%d: %v", n, err)
		}
		if s.Len("t") != n {
			return fmt.Errorf("n=%d: Len = %d", n, s.Len("t"))
		}
		if msg := checkTrees(s, "t"); msg != "" {
			return fmt.Errorf("n=%d: invariant: %s", n, msg)
		}
		count := 0
		s.ForEach("t", func(key string, _ *VersionedRecord) bool {
			count++
			return true
		})
		if count != n {
			return fmt.Errorf("n=%d: iterated %d", n, count)
		}
		return nil
	}
	// Deterministic edge sizes around the fill boundaries.
	fill := 2*btreeMinDegree - 1
	for _, n := range []int{0, 1, 2, btreeMinDegree - 1, fill - 1, fill, fill + 1, fill + 2,
		2*fill + 1, 2*fill + 2, 3 * fill, fill*fill + fill} {
		if err := check(n); err != nil {
			t.Error(err)
		}
	}
	// Random sizes.
	f := func(raw uint16) bool {
		return check(int(raw%20000)) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestBulkLoadValidation(t *testing.T) {
	s := OpenMemory()
	defer s.Close()
	// Unsorted input.
	bad := []BulkKV{{Key: "b"}, {Key: "a"}}
	if err := s.BulkLoad("t", bad); err == nil {
		t.Error("unsorted input accepted")
	}
	// Duplicate keys.
	dup := []BulkKV{{Key: "a"}, {Key: "a"}}
	if err := s.BulkLoad("t", dup); err == nil {
		t.Error("duplicate keys accepted")
	}
	// Non-empty table.
	s.Put("t", "existing", fields("v"))
	if err := s.BulkLoad("t", bulkKVs(3)); err == nil {
		t.Error("bulk load into non-empty table accepted")
	}
	// Closed store.
	s2 := OpenMemory()
	s2.Close()
	if err := s2.BulkLoad("t", bulkKVs(3)); err != ErrClosed {
		t.Errorf("closed store = %v", err)
	}
}

func TestBulkLoadDurability(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bulk.wal")
	s, err := Open(Options{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.BulkLoad("t", bulkKVs(500)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(Options{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len("t") != 500 {
		t.Errorf("recovered %d records", r.Len("t"))
	}
	rec, err := r.Get("t", "key00000042")
	if err != nil || string(rec.Fields["field0"]) != "42" {
		t.Errorf("recovered record = %v, %v", rec, err)
	}
}

func TestBulkLoadMatchesSequentialInserts(t *testing.T) {
	kvs := bulkKVs(3000)
	bulk := OpenMemory()
	defer bulk.Close()
	if err := bulk.BulkLoad("t", kvs); err != nil {
		t.Fatal(err)
	}
	seq := OpenMemory()
	defer seq.Close()
	for _, kv := range kvs {
		if _, err := seq.Insert("t", kv.Key, kv.Fields); err != nil {
			t.Fatal(err)
		}
	}
	var bulkKeys, seqKeys []string
	bulk.ForEach("t", func(k string, _ *VersionedRecord) bool {
		bulkKeys = append(bulkKeys, k)
		return true
	})
	seq.ForEach("t", func(k string, _ *VersionedRecord) bool {
		seqKeys = append(seqKeys, k)
		return true
	})
	if len(bulkKeys) != len(seqKeys) {
		t.Fatalf("key counts differ: %d vs %d", len(bulkKeys), len(seqKeys))
	}
	if !sort.StringsAreSorted(bulkKeys) {
		t.Error("bulk keys unsorted")
	}
	for i := range bulkKeys {
		if bulkKeys[i] != seqKeys[i] {
			t.Fatalf("key %d differs: %s vs %s", i, bulkKeys[i], seqKeys[i])
		}
	}
}

func BenchmarkBulkLoadVsInserts(b *testing.B) {
	const n = 20000
	kvs := bulkKVs(n)
	b.Run("BulkLoad", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s := OpenMemory()
			if err := s.BulkLoad("t", kvs); err != nil {
				b.Fatal(err)
			}
			s.Close()
		}
	})
	b.Run("SequentialInserts", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s := OpenMemory()
			for _, kv := range kvs {
				if _, err := s.Insert("t", kv.Key, kv.Fields); err != nil {
					b.Fatal(err)
				}
			}
			s.Close()
		}
	})
}
