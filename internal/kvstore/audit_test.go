package kvstore

import (
	"context"
	"fmt"
	"testing"

	"ycsbt/internal/db"
)

// TestBindingUpholdsImmutability drives the kvstore db binding —
// Read/Scan with and without field projections, updates, and batched
// ops including the fields==nil path that used to alias the engine
// map — over an audited engine and verifies no record handed out by
// Get/Scan/BatchGet was ever mutated.
func TestBindingUpholdsImmutability(t *testing.T) {
	ctx := context.Background()
	audit := NewAuditEngine(OpenMemoryShards(4))
	defer audit.Close()
	b := NewEngineBinding(audit)

	for i := 0; i < 64; i++ {
		key := fmt.Sprintf("user%03d", i)
		if err := b.Insert(ctx, "t", key, db.Record{"f0": []byte("a"), "f1": []byte("b")}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 64; i++ {
		key := fmt.Sprintf("user%03d", i)
		// Full read (fields==nil): the caller owns the returned map and
		// may extend it without corrupting engine state.
		rec, err := b.Read(ctx, "t", key, nil)
		if err != nil {
			t.Fatal(err)
		}
		rec["caller-added"] = []byte("x")
		// Projected read.
		if _, err := b.Read(ctx, "t", key, []string{"f0"}); err != nil {
			t.Fatal(err)
		}
		if err := b.Update(ctx, "t", key, db.Record{"f1": []byte("updated")}); err != nil {
			t.Fatal(err)
		}
	}
	kvs, err := b.Scan(ctx, "t", "", 32, nil)
	if err != nil || len(kvs) != 32 {
		t.Fatalf("Scan = %d, %v", len(kvs), err)
	}
	for _, kv := range kvs {
		kv.Record["scan-added"] = []byte("y")
	}
	ops := []db.BatchOp{
		{Op: db.OpRead, Table: "t", Key: "user001"},
		{Op: db.OpRead, Table: "t", Key: "user002", Fields: []string{"f1"}},
		{Op: db.OpUpdate, Table: "t", Key: "user003", Values: db.Record{"f0": []byte("z")}},
		{Op: db.OpRead, Table: "t", Key: "user003"},
	}
	for i, r := range b.ExecBatch(ctx, ops) {
		if r.Err != nil {
			t.Fatalf("batch op %d: %v", i, r.Err)
		}
		if r.Record != nil {
			r.Record["batch-added"] = []byte("w")
		}
	}
	if err := audit.Verify(); err != nil {
		t.Fatal(err)
	}
	if audit.Handed() == 0 {
		t.Fatal("audit observed no records")
	}
}

// TestAuditCatchesMutation proves the guard actually detects an
// offender: mutating an engine-owned record must fail Verify.
func TestAuditCatchesMutation(t *testing.T) {
	audit := NewAuditEngine(OpenMemory())
	defer audit.Close()
	if _, err := audit.Put("t", "k", map[string][]byte{"f": []byte("ok")}); err != nil {
		t.Fatal(err)
	}
	rec, err := audit.Get("t", "k")
	if err != nil {
		t.Fatal(err)
	}
	if err := audit.Verify(); err != nil {
		t.Fatalf("clean Verify failed: %v", err)
	}
	rec.Fields["f"][0] = 'X' // the bug the audit exists to catch
	if err := audit.Verify(); err == nil {
		t.Fatal("Verify missed an in-place mutation")
	}
	rec.Fields["f"][0] = 'o'
	rec.Fields["new"] = []byte("added")
	if err := audit.Verify(); err == nil {
		t.Fatal("Verify missed a map insert")
	}
}
