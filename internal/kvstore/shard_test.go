package kvstore

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"time"
)

// shardKeys returns n keys guaranteed to land in shard want of a
// shards-partition store, so tests can target a specific segment.
func shardKeys(t *testing.T, shards, want, n int) []string {
	t.Helper()
	var out []string
	for i := 0; len(out) < n; i++ {
		k := fmt.Sprintf("key%06d", i)
		if shardOf(k, shards) == want {
			out = append(out, k)
		}
		if i > 1<<20 {
			t.Fatalf("could not find %d keys for shard %d/%d", n, want, shards)
		}
	}
	return out
}

func TestShardedScanOrdered(t *testing.T) {
	s, err := Open(Options{Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const n = 500
	want := make([]string, 0, n)
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("user%04d", i)
		want = append(want, k)
		if _, err := s.Insert("t", k, fields(fmt.Sprint(i))); err != nil {
			t.Fatal(err)
		}
	}
	sort.Strings(want)

	// Full scan: every key, globally ordered despite living in 8 trees.
	kvs, err := s.Scan("t", "", -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != n {
		t.Fatalf("full scan returned %d records, want %d", len(kvs), n)
	}
	for i, kv := range kvs {
		if kv.Key != want[i] {
			t.Fatalf("scan[%d] = %q, want %q", i, kv.Key, want[i])
		}
	}

	// Bounded scan from the middle crosses shard boundaries and must
	// still return the globally first count keys ≥ startKey.
	start := want[123]
	kvs, err = s.Scan("t", start, 57)
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != 57 {
		t.Fatalf("bounded scan returned %d records, want 57", len(kvs))
	}
	for i, kv := range kvs {
		if kv.Key != want[123+i] {
			t.Fatalf("bounded scan[%d] = %q, want %q", i, kv.Key, want[123+i])
		}
	}

	// ForEach visits the same global order.
	var visited []string
	if err := s.ForEach("t", func(key string, _ *VersionedRecord) bool {
		visited = append(visited, key)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(visited) != n {
		t.Fatalf("ForEach visited %d, want %d", len(visited), n)
	}
	if !sort.StringsAreSorted(visited) {
		t.Fatal("ForEach visit order is not globally sorted")
	}
}

func TestShardedWALRecovery(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	s, err := Open(Options{Path: dir, Shards: 4, SyncWrites: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Shards(); got != 4 {
		t.Fatalf("Shards() = %d, want 4", got)
	}
	const n = 200
	for i := 0; i < n; i++ {
		if _, err := s.Insert("t", fmt.Sprintf("k%04d", i), fields(fmt.Sprint(i))); err != nil {
			t.Fatal(err)
		}
	}
	// Mutate some keys so replay has multi-version history per key.
	for i := 0; i < n; i += 3 {
		if _, err := s.Put("t", fmt.Sprintf("k%04d", i), fields("updated")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i += 7 {
		if err := s.Delete("t", fmt.Sprintf("k%04d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Every shard must have its own non-empty segment.
	for i := 0; i < 4; i++ {
		fi, err := os.Stat(filepath.Join(dir, fmt.Sprintf("wal-%d.log", i)))
		if err != nil {
			t.Fatalf("segment %d: %v", i, err)
		}
		if fi.Size() == 0 {
			t.Fatalf("segment %d is empty", i)
		}
	}

	r, err := Open(Options{Path: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := r.Shards(); got != 4 {
		t.Fatalf("recovered Shards() = %d, want 4 (manifest pinned)", got)
	}
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("k%04d", i)
		rec, err := r.Get("t", k)
		if i%7 == 0 {
			if !errors.Is(err, ErrNotFound) {
				t.Fatalf("deleted %s resurrected: %v", k, err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("Get(%s) after recovery: %v", k, err)
		}
		want := fmt.Sprint(i)
		if i%3 == 0 {
			want = "updated"
		}
		if string(rec.Fields["field0"]) != want {
			t.Fatalf("recovered %s = %q, want %q", k, rec.Fields["field0"], want)
		}
	}
}

// TestShardedCrashRecoveryTornSegment simulates a crash that tears the
// final WAL frame in one randomly chosen shard: that partition must
// recover the consistent prefix of its own history, and every other
// partition must be untouched.
func TestShardedCrashRecoveryTornSegment(t *testing.T) {
	const shards = 4
	dir := filepath.Join(t.TempDir(), "store")
	s, err := Open(Options{Path: dir, Shards: shards, SyncWrites: true})
	if err != nil {
		t.Fatal(err)
	}
	victim := rand.Intn(shards)
	t.Logf("victim shard: %d", victim)

	// Per shard: several durable keys, then one final key whose frame
	// the "crash" will tear in the victim segment.
	durable := make([][]string, shards)
	last := make([]string, shards)
	for sh := 0; sh < shards; sh++ {
		keys := shardKeys(t, shards, sh, 6)
		durable[sh], last[sh] = keys[:5], keys[5]
		for _, k := range durable[sh] {
			if _, err := s.Insert("t", k, fields("durable")); err != nil {
				t.Fatal(err)
			}
		}
	}
	for sh := 0; sh < shards; sh++ {
		if _, err := s.Insert("t", last[sh], fields("tail")); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the victim's final frame mid-frame: chop a few bytes off the
	// end of its segment, leaving a partial frame at the tail.
	seg := filepath.Join(dir, fmt.Sprintf("wal-%d.log", victim))
	fi, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	r, err := Open(Options{Path: dir})
	if err != nil {
		t.Fatalf("reopen with torn segment: %v", err)
	}
	defer r.Close()
	for sh := 0; sh < shards; sh++ {
		for _, k := range durable[sh] {
			if _, err := r.Get("t", k); err != nil {
				t.Errorf("shard %d durable key %s lost: %v", sh, k, err)
			}
		}
		_, err := r.Get("t", last[sh])
		if sh == victim {
			if !errors.Is(err, ErrNotFound) {
				t.Errorf("victim shard torn tail key %s survived: %v", last[sh], err)
			}
		} else if err != nil {
			t.Errorf("shard %d tail key %s lost to another shard's tear: %v", sh, last[sh], err)
		}
	}
	// The victim partition must be writable after truncation.
	if _, err := r.Put("t", last[victim], fields("rewritten")); err != nil {
		t.Errorf("Put to victim shard after recovery: %v", err)
	}
}

func TestManifestPinsShardCount(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	s, err := Open(Options{Path: dir, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Insert("t", "k", fields("v")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopening with a different requested count must keep the pinned
	// layout — otherwise keys would re-route away from their history.
	r, err := Open(Options{Path: dir, Shards: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := r.Shards(); got != 4 {
		t.Fatalf("Shards() = %d, want manifest-pinned 4", got)
	}
	if _, err := r.Get("t", "k"); err != nil {
		t.Fatalf("Get after pinned reopen: %v", err)
	}
}

func TestLegacyFileStaysSingleShard(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.wal")
	s, err := Open(Options{Path: path, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Insert("t", "k", fields("v")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// The existing file layout wins over a multi-shard request.
	r, err := Open(Options{Path: path, Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := r.Shards(); got != 1 {
		t.Fatalf("Shards() = %d, want 1 (existing file layout)", got)
	}
	if _, err := r.Get("t", "k"); err != nil {
		t.Fatalf("Get after legacy reopen: %v", err)
	}
}

// TestShardedConcurrentScanWrites races cross-shard scans and ForEach
// against writers on every shard; run under -race it checks the merge
// path holds its locking discipline, and every scan result must be
// key-ordered with no key seen twice.
func TestShardedConcurrentScanWrites(t *testing.T) {
	s, err := Open(Options{Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const keys = 128
	for i := 0; i < keys; i++ {
		if _, err := s.Insert("t", fmt.Sprintf("k%04d", i), fields("0")); err != nil {
			t.Fatal(err)
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := fmt.Sprintf("k%04d", rng.Intn(keys))
				switch i % 3 {
				case 0:
					s.Put("t", k, fields(fmt.Sprint(i)))
				case 1:
					s.Update("t", k, map[string][]byte{"x": []byte("y")})
				case 2:
					s.Get("t", k)
				}
			}
		}(w)
	}
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				kvs, err := s.Scan("t", fmt.Sprintf("k%04d", r*13), 64)
				if err != nil {
					t.Errorf("concurrent scan: %v", err)
					return
				}
				for i := 1; i < len(kvs); i++ {
					if kvs[i-1].Key >= kvs[i].Key {
						t.Errorf("scan out of order: %q then %q", kvs[i-1].Key, kvs[i].Key)
						return
					}
				}
				var count int
				s.ForEach("t", func(string, *VersionedRecord) bool {
					count++
					return true
				})
				if count != keys {
					t.Errorf("ForEach snapshot saw %d keys, want %d", count, keys)
					return
				}
			}
		}(r)
	}
	time.Sleep(200 * time.Millisecond)
	close(stop)
	wg.Wait()
}

func TestGroupCommitDurability(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	s, err := Open(Options{
		Path:        dir,
		Shards:      4,
		SyncWrites:  true,
		GroupCommit: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Concurrent writers share group fsyncs within the window.
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				k := fmt.Sprintf("w%d-%03d", w, i)
				if _, err := s.Insert("t", k, fields("v")); err != nil {
					t.Errorf("Insert(%s): %v", k, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(Options{Path: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := r.Len("t"); got != 8*25 {
		t.Fatalf("recovered %d records, want %d", got, 8*25)
	}
}

func TestShardsOneMatchesLegacyEngine(t *testing.T) {
	// A 1-shard store must behave exactly like the pre-sharding engine:
	// same single-segment file layout, same contents.
	path := filepath.Join(t.TempDir(), "store.wal")
	s, err := Open(Options{Path: path, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if _, err := s.Insert("t", fmt.Sprintf("k%02d", i), fields(fmt.Sprint(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatalf("single-shard store must write a plain WAL file: %v", err)
	}
	if fi.IsDir() {
		t.Fatal("single-shard store wrote a directory, want a file")
	}
	r, err := Open(Options{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len("t") != 50 {
		t.Fatalf("recovered %d records, want 50", r.Len("t"))
	}
}
