package kvstore

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ycsbt/internal/obs"
)

// Common storage errors. They are distinct from the db-layer
// sentinels so the engine can be used standalone; the binding in
// binding.go translates them.
var (
	// ErrNotFound reports that the key does not exist.
	ErrNotFound = errors.New("kvstore: key not found")
	// ErrVersionMismatch reports a failed conditional operation.
	ErrVersionMismatch = errors.New("kvstore: version mismatch")
	// ErrExists reports that a create-only put found an existing key.
	ErrExists = errors.New("kvstore: key already exists")
	// ErrClosed reports use after Close.
	ErrClosed = errors.New("kvstore: store is closed")
)

// VersionedRecord is a stored record together with its version and
// commit timestamp. The version starts at 1 on insert and increments
// on every successful mutation (including tombstones); it is the
// engine's ETag and the compare handle of every conditional
// operation. CommitTS is the store-wide monotonic commit timestamp
// assigned under the partition lock; each key's versions form a short
// commit-timestamp-ordered chain (newest first) that time-travel
// reads walk via AsOf.
//
// Immutability contract: records returned by Get, Scan, BatchGet and
// ForEach are the engine's own stored values, shared with concurrent
// readers — not copies. Callers must treat them (the Fields map and
// every byte slice in it) as read-only, and call Clone before
// mutating. Writers uphold the other half of the contract: every
// mutation stores a freshly built record and never edits a published
// one in place. The only post-publish mutation the engine itself
// performs is cutting a chain's prev pointer to nil (retention trim /
// vacuum), which is an atomic store concurrent walkers tolerate.
type VersionedRecord struct {
	Version  uint64
	CommitTS int64
	Fields   map[string][]byte

	// deleted marks a tombstone: the version recording a delete. A
	// tombstone head reads as "not found" at the head and at any ts at
	// or after its commit; older versions beneath it remain readable.
	deleted bool

	// prev links to the next-older version of the same key (nil at the
	// chain tail). Atomic because vacuum cuts chains with one store
	// while lock-free readers walk them.
	prev atomic.Pointer[VersionedRecord]

	// tailTS is the oldest commit ts reachable through the chain and
	// chainLen the link count, both recorded at link time so the write
	// path can skip trim walks when nothing is expired. They are
	// written only before the record is published (or under the
	// partition lock) and may be conservatively stale after a
	// lock-free vacuum cut.
	tailTS   int64
	chainLen uint32
}

// Clone deep-copies the record's data (version, commit ts, fields).
// The clone carries no chain link — use it when a caller needs a
// private, mutable copy of an engine-returned record.
func (v *VersionedRecord) Clone() *VersionedRecord { return v.clone() }

// clone deep-copies the record (internal spelling; the write path uses
// it to build fresh merge results).
func (v *VersionedRecord) clone() *VersionedRecord {
	out := &VersionedRecord{Version: v.Version, CommitTS: v.CommitTS, Fields: make(map[string][]byte, len(v.Fields))}
	for f, b := range v.Fields {
		out.Fields[f] = append([]byte(nil), b...)
	}
	return out
}

// Prev returns the next-older version in the chain, or nil at the
// tail (or after retention trimmed the rest away).
func (v *VersionedRecord) Prev() *VersionedRecord { return v.prev.Load() }

// Tombstone reports whether this version records a delete.
func (v *VersionedRecord) Tombstone() bool { return v.deleted }

// AsOf walks the chain to the newest version with CommitTS ≤ ts and
// returns it — tombstones included — or nil when every version is
// newer than ts. Callers wanting read semantics should treat a
// tombstone result as "not found" (the asOf helper does).
func (v *VersionedRecord) AsOf(ts int64) *VersionedRecord {
	for v != nil && v.CommitTS > ts {
		v = v.prev.Load()
	}
	return v
}

// asOf resolves a chain head to the readable version at ts: the
// newest version ≤ ts, with tombstones mapped to nil (not found).
func asOf(v *VersionedRecord, ts int64) *VersionedRecord {
	v = v.AsOf(ts)
	if v == nil || v.deleted {
		return nil
	}
	return v
}

// link records prev as this record's older neighbour and carries the
// chain bookkeeping (tail ts, length) forward. Called before the
// record is published.
func (v *VersionedRecord) link(prev *VersionedRecord) {
	v.tailTS = v.CommitTS
	v.chainLen = 1
	if prev != nil {
		v.prev.Store(prev)
		v.tailTS = prev.tailTS
		v.chainLen = prev.chainLen + 1
	}
}

// VersionedKV pairs a key with its versioned record in scan results.
type VersionedKV struct {
	Key    string
	Record *VersionedRecord
}

// AnyVersion passes any current version in conditional operations.
const AnyVersion = ^uint64(0)

// MustNotExist is the expected version for create-only puts.
const MustNotExist = uint64(0)

// DefaultShards is the partition count bindings use when the
// "kvstore.shards" property is absent.
const DefaultShards = 8

// DefaultRetention is the version-chain retention window used when
// Options.Retention is zero: time-travel reads are served at any ts
// within the window; older versions are reclaimable.
const DefaultRetention = 60 * time.Second

// noFloor is the pin/watermark floor meaning "nothing pinned".
const noFloor = int64(math.MaxInt64)

// manifestName is the file recording a sharded directory's layout.
const manifestName = "MANIFEST"

// Options configures a Store.
type Options struct {
	// Path is the WAL location; empty means a volatile in-memory
	// store with no durability. With a single shard it names the WAL
	// file itself (the original single-segment layout); with multiple
	// shards it names a directory holding one segment per shard
	// (wal-<shard>.log) plus a MANIFEST pinning the shard count.
	Path string
	// SyncWrites forces an fsync after every logged mutation (or, with
	// GroupCommit, makes every mutation wait for the window's shared
	// fsync). Off by default, trading durability for latency exactly
	// as the paper's "latency versus durability" discussion describes.
	SyncWrites bool
	// Shards is the number of hash partitions; values <= 1 mean a
	// single partition, which behaves exactly like the pre-sharding
	// engine. An existing on-disk layout always wins over this value:
	// a WAL file opens as one shard and a directory opens with its
	// MANIFEST's count, so reopening never re-routes keys away from
	// the segment that holds their history.
	Shards int
	// GroupCommit is the WAL group-commit window; zero disables it.
	// When positive, a per-shard background syncer fsyncs once per
	// window instead of once per mutation.
	GroupCommit time.Duration
	// Metrics, when non-nil, receives the engine's kvstore_* series
	// (per-shard op counts, WAL fsync latency, group-commit occupancy,
	// compactions, WAL size, version-chain lengths, vacuumed versions).
	// Nil disables instrumentation entirely — the hot paths then touch
	// only nil no-op handles.
	Metrics *obs.Registry
	// Retention is the MVCC retention window: versions older than the
	// newest one at (now − Retention) are reclaimable by the write-path
	// trim and by Vacuum, unless a pin or the vacuum watermark holds
	// them. Zero selects DefaultRetention.
	Retention time.Duration
	// VacuumInterval, when positive, runs a background Vacuum sweep on
	// that period (trimming cold chains and purging expired tombstoned
	// keys). Zero disables the loop; hot keys are still trimmed inline
	// on every write.
	VacuumInterval time.Duration
}

// Store is a concurrent, versioned, ordered key-value store with
// multiple named tables, hash-partitioned across independent shards.
// Single-key operations are linearizable (each key lives in exactly
// one partition); Scan merges the per-partition trees into one
// key-ordered result. Every committed mutation carries a store-wide
// monotonic commit timestamp, and each key keeps a short chain of
// recent versions so GetAsOf/ScanAsOf serve consistent reads at any
// ts within the retention window.
type Store struct {
	parts []*partition

	// clock is the last issued commit timestamp (UnixNano domain, CAS
	// advanced — the same discipline as the oracle's Local source, so
	// oracle-issued snapshot timestamps are directly comparable).
	clock     atomic.Int64
	retention time.Duration

	// Pinned snapshots: vacuum and the write-path trim never reclaim a
	// version the oldest pin can still see. pinFloor caches the min
	// active pin (noFloor when none) so the hot path reads one atomic.
	pinMu    sync.Mutex
	pinned   map[int64]int
	pinFloor atomic.Int64

	// extFloor is the externally published min-active-ts watermark
	// (SetVacuumFloor) — the txn layer's oldest snapshot reader.
	extFloor atomic.Int64

	vacStop chan struct{}
	vacDone chan struct{}
	vacOnce sync.Once
}

// newStore builds the shared store shell (clock, pins, retention).
func newStore(shards int, retention time.Duration) *Store {
	if retention <= 0 {
		retention = DefaultRetention
	}
	s := &Store{parts: make([]*partition, shards), retention: retention, pinned: make(map[int64]int)}
	s.pinFloor.Store(noFloor)
	s.extFloor.Store(noFloor)
	return s
}

// nextTS issues the next commit timestamp: wall-clock nanoseconds,
// bumped to stay strictly monotonic across the whole store.
func (s *Store) nextTS() int64 {
	for {
		now := time.Now().UnixNano()
		last := s.clock.Load()
		if now <= last {
			now = last + 1
		}
		if s.clock.CompareAndSwap(last, now) {
			return now
		}
	}
}

// advanceTS bumps the clock to at least ts (replay, bulk load).
func (s *Store) advanceTS(ts int64) {
	for {
		last := s.clock.Load()
		if ts <= last || s.clock.CompareAndSwap(last, ts) {
			return
		}
	}
}

// SnapshotTS draws a fresh snapshot timestamp: every commit already
// published is ≤ the returned ts and every later commit is > it, so
// reads at this ts form a stable consistent cut.
func (s *Store) SnapshotTS() int64 { return s.nextTS() }

// Pin freezes a snapshot: it draws a snapshot ts and holds the vacuum
// floor at it until the returned release is called, guaranteeing
// every version visible at that ts survives trims and Vacuum.
// Release is idempotent.
func (s *Store) Pin() (int64, func()) {
	s.pinMu.Lock()
	ts := s.nextTS()
	s.pinned[ts]++
	s.recomputePinFloorLocked()
	s.pinMu.Unlock()
	var once sync.Once
	return ts, func() {
		once.Do(func() {
			s.pinMu.Lock()
			if n := s.pinned[ts]; n <= 1 {
				delete(s.pinned, ts)
			} else {
				s.pinned[ts] = n - 1
			}
			s.recomputePinFloorLocked()
			s.pinMu.Unlock()
		})
	}
}

func (s *Store) recomputePinFloorLocked() {
	floor := noFloor
	for ts := range s.pinned {
		if ts < floor {
			floor = ts
		}
	}
	s.pinFloor.Store(floor)
}

// SetVacuumFloor publishes the min-active-ts watermark from an outer
// coordination layer (the txn manager's oldest snapshot reader):
// vacuum and the write-path trim keep every version visible at or
// after ts. A ts ≤ 0 clears the watermark.
func (s *Store) SetVacuumFloor(ts int64) {
	if ts <= 0 {
		ts = noFloor
	}
	s.extFloor.Store(ts)
}

// cutTS computes the reclaim horizon as of now: versions strictly
// older than the newest one ≤ the cut are reclaimable. The cut never
// passes a pinned snapshot or the external watermark.
func (s *Store) cutTS(now int64) int64 {
	cut := now - int64(s.retention)
	if pf := s.pinFloor.Load(); pf < cut {
		cut = pf
	}
	if ef := s.extFloor.Load(); ef < cut {
		cut = ef
	}
	return cut
}

// Open creates or reopens a store. When opts.Path names an existing
// WAL layout the store replays every segment to rebuild its state,
// routing each record to its partition by key hash.
func Open(opts Options) (*Store, error) {
	shards := opts.Shards
	if shards <= 0 {
		shards = 1
	}
	if opts.Path == "" {
		s := newStore(shards, opts.Retention)
		for i := range s.parts {
			s.parts[i] = newPartition(nil, s)
		}
		s.instrument(opts.Metrics)
		s.startVacuumLoop(opts.VacuumInterval)
		return s, nil
	}

	// Resolve the on-disk layout. An existing layout wins over
	// opts.Shards so reopening a store never re-hashes keys into a
	// segment that does not hold their history.
	dirMode := shards > 1
	if fi, err := os.Stat(opts.Path); err == nil {
		dirMode = fi.IsDir()
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("kvstore: %w", err)
	}

	var segments []string
	if dirMode {
		if err := os.MkdirAll(opts.Path, 0o755); err != nil {
			return nil, fmt.Errorf("kvstore: %w", err)
		}
		n, err := loadOrInitManifest(filepath.Join(opts.Path, manifestName), shards)
		if err != nil {
			return nil, err
		}
		shards = n
		for i := 0; i < shards; i++ {
			segments = append(segments, filepath.Join(opts.Path, fmt.Sprintf("wal-%d.log", i)))
		}
	} else {
		shards = 1
		segments = []string{opts.Path}
	}

	s := newStore(shards, opts.Retention)
	for i := range s.parts {
		s.parts[i] = newPartition(nil, s)
	}
	// Recovery order: segments replay in ascending shard index. Each
	// record routes by key hash, so with a stable shard count segment
	// i rebuilds partition i; per-key history lives in one segment,
	// keeping blind replay order-correct. Records replay in append
	// order, which is commit-ts order per partition, so chains rebuild
	// newest-at-head exactly as they were written.
	var maxTS int64
	for i, path := range segments {
		w, err := openWAL(path, opts.SyncWrites, opts.GroupCommit)
		if err != nil {
			s.closePartial()
			return nil, err
		}
		if err := w.replay(func(rec walRecord) error {
			if rec.CommitTS > maxTS {
				maxTS = rec.CommitTS
			}
			return s.part(rec.Key).applyReplay(rec)
		}); err != nil {
			w.close()
			s.closePartial()
			return nil, fmt.Errorf("kvstore: replaying %s: %w", path, err)
		}
		s.parts[i].wal = w
	}
	// Commits after recovery must stay above everything replayed.
	s.advanceTS(maxTS)
	// Expose the recovered trees to the lock-free read path.
	for _, p := range s.parts {
		p.publishAll()
	}
	s.instrument(opts.Metrics)
	s.startVacuumLoop(opts.VacuumInterval)
	return s, nil
}

// closePartial releases WAL handles opened before an Open failure.
func (s *Store) closePartial() {
	for _, p := range s.parts {
		if p.wal != nil {
			p.wal.close()
		}
	}
}

// loadOrInitManifest reads the shard count pinned in a sharded
// directory, writing one with the requested count on first open.
func loadOrInitManifest(path string, shards int) (int, error) {
	b, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
		if err != nil {
			return 0, fmt.Errorf("kvstore: writing manifest: %w", err)
		}
		if _, err := fmt.Fprintf(f, "shards=%d\n", shards); err != nil {
			f.Close()
			return 0, fmt.Errorf("kvstore: writing manifest: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return 0, fmt.Errorf("kvstore: writing manifest: %w", err)
		}
		return shards, f.Close()
	}
	if err != nil {
		return 0, fmt.Errorf("kvstore: reading manifest: %w", err)
	}
	val, ok := strings.CutPrefix(strings.TrimSpace(string(b)), "shards=")
	if !ok {
		return 0, fmt.Errorf("kvstore: malformed manifest %s: %q", path, b)
	}
	n, err := strconv.Atoi(val)
	if err != nil || n < 1 {
		return 0, fmt.Errorf("kvstore: malformed manifest %s: %q", path, b)
	}
	return n, nil
}

// OpenMemory returns a volatile single-shard in-memory store. One
// partition preserves the pre-sharding semantics this constructor has
// always had — Scan and ForEach are atomic snapshots of the whole
// table. Use OpenMemoryShards (or Open) to opt into sharding.
func OpenMemory() *Store {
	return OpenMemoryShards(1)
}

// OpenMemoryShards returns a volatile in-memory store with n hash
// partitions (n <= 1 means one). With multiple shards, Scan snapshots
// are consistent per partition but not atomic across partitions; see
// Store.Scan.
func OpenMemoryShards(n int) *Store {
	s, _ := Open(Options{Shards: n}) // in-memory open cannot fail
	return s
}

// Shards returns the number of hash partitions.
func (s *Store) Shards() int { return len(s.parts) }

// shardOf hashes key with FNV-1a and reduces it to a partition index.
func shardOf(key string, n int) int {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return int(h % uint32(n))
}

// part routes a key to its partition.
func (s *Store) part(key string) *partition {
	if len(s.parts) == 1 {
		return s.parts[0]
	}
	return s.parts[shardOf(key, len(s.parts))]
}

// Get returns the record under table/key. The read is wait-free and
// allocation-free: it traverses the partition's atomically published
// snapshot with no lock and returns the engine-owned immutable record
// without cloning (see the VersionedRecord immutability contract).
func (s *Store) Get(table, key string) (*VersionedRecord, error) {
	return s.part(key).get(table, key)
}

// GetAsOf returns the newest version of table/key with commit ts ≤
// ts (a time-travel read). It briefly takes the partition's read lock
// to collect the published root — guaranteeing every commit ≤ a
// previously drawn SnapshotTS is visible — then walks the immutable
// chain lock-free. A tombstone at or before ts reads as not found.
// Reads below the retention horizon may already be trimmed; callers
// wanting a stable horizon should Pin first.
func (s *Store) GetAsOf(table, key string, ts int64) (*VersionedRecord, error) {
	return s.part(key).getAsOf(table, key, ts)
}

// Put unconditionally stores fields under table/key (insert or full
// replace) and returns the new version.
func (s *Store) Put(table, key string, fields map[string][]byte) (uint64, error) {
	return s.part(key).putIfVersion(table, key, fields, AnyVersion)
}

// Insert stores fields under table/key only when the key does not
// already exist.
func (s *Store) Insert(table, key string, fields map[string][]byte) (uint64, error) {
	return s.part(key).putIfVersion(table, key, fields, MustNotExist)
}

// PutIfVersion stores fields under table/key when the current version
// matches expect: AnyVersion always matches, MustNotExist matches
// only a missing key, any other value must equal the stored version.
// It returns the new version, or ErrVersionMismatch / ErrExists.
func (s *Store) PutIfVersion(table, key string, fields map[string][]byte, expect uint64) (uint64, error) {
	return s.part(key).putIfVersion(table, key, fields, expect)
}

// Update merges fields into the existing record under table/key and
// returns the new version; the key must exist.
func (s *Store) Update(table, key string, fields map[string][]byte) (uint64, error) {
	return s.part(key).update(table, key, fields)
}

// Delete removes table/key; it returns ErrNotFound when absent.
func (s *Store) Delete(table, key string) error {
	return s.part(key).deleteIfVersion(table, key, AnyVersion)
}

// DeleteIfVersion removes table/key when its version matches expect
// (AnyVersion always matches).
func (s *Store) DeleteIfVersion(table, key string, expect uint64) error {
	return s.part(key).deleteIfVersion(table, key, expect)
}

// Scan returns up to count records with key ≥ startKey in key order,
// k-way merging the per-partition trees. A count < 0 means no limit.
// The scan is a true multi-partition snapshot read: one consistent cut
// of every partition's published root is collected (see
// snapshotTable), then the immutable trees are merged entirely
// lock-free, so the result is an atomic point-in-time view of the
// whole table even while writers and Compact run. Returned records are
// engine-owned immutable snapshots — never mutate them.
func (s *Store) Scan(table, startKey string, count int) ([]VersionedKV, error) {
	if len(s.parts) == 1 {
		return s.parts[0].scan(table, startKey, count)
	}
	snaps, err := s.snapshotTable(table)
	if err != nil {
		return nil, err
	}
	lists := make([][]VersionedKV, 0, len(snaps))
	for i, ts := range snaps {
		p := s.parts[i]
		p.metrics.scans.Inc()
		if ts == nil {
			continue
		}
		// Each partition contributes at most count records, so the
		// global first count live inside the union of the lists.
		kvs := scanSnap(ts, startKey, count)
		p.metrics.snapScanLen.Observe(float64(len(kvs)))
		if len(kvs) > 0 {
			lists = append(lists, kvs)
		}
	}
	return mergeScan(lists, count), nil
}

// ScanAsOf returns up to count records with key ≥ startKey as they
// stood at ts, k-way merging the per-partition chains. The consistent
// cut property of Scan extends through time: the roots are collected
// under every partition's read lock (so all commits ≤ ts are
// published), then each key resolves to its newest version ≤ ts
// entirely lock-free — writers are never blocked by the walk itself.
func (s *Store) ScanAsOf(table, startKey string, count int, ts int64) ([]VersionedKV, error) {
	snaps, err := s.snapshotTable(table)
	if err != nil {
		return nil, err
	}
	lists := make([][]VersionedKV, 0, len(snaps))
	for i, tsnap := range snaps {
		p := s.parts[i]
		p.metrics.scans.Inc()
		if tsnap == nil {
			continue
		}
		kvs := scanSnapAsOf(tsnap, startKey, count, ts)
		p.metrics.snapScanLen.Observe(float64(len(kvs)))
		if len(kvs) > 0 {
			lists = append(lists, kvs)
		}
	}
	return mergeScan(lists, count), nil
}

// ScanVersionsAsOf is ScanAsOf with tombstones included: each key
// resolves to its newest version ≤ ts even when that version records a
// delete (Record.Tombstone() reports which). This is the replication
// read — a consistent cut that carries deletes along, so a migration
// copy cannot resurrect deleted keys on a node holding older live
// records. Ordinary readers want ScanAsOf.
func (s *Store) ScanVersionsAsOf(table, startKey string, count int, ts int64) ([]VersionedKV, error) {
	snaps, err := s.snapshotTable(table)
	if err != nil {
		return nil, err
	}
	lists := make([][]VersionedKV, 0, len(snaps))
	for i, tsnap := range snaps {
		p := s.parts[i]
		p.metrics.scans.Inc()
		if tsnap == nil {
			continue
		}
		kvs := scanSnapVersionsAsOf(tsnap, startKey, count, ts)
		p.metrics.snapScanLen.Observe(float64(len(kvs)))
		if len(kvs) > 0 {
			lists = append(lists, kvs)
		}
	}
	return mergeScan(lists, count), nil
}

// scanCursor walks one partition's already-ordered scan result.
type scanCursor struct {
	kvs []VersionedKV
	i   int
}

type scanHeap []*scanCursor

func (h scanHeap) Len() int { return len(h) }
func (h scanHeap) Less(i, j int) bool {
	return h[i].kvs[h[i].i].Key < h[j].kvs[h[j].i].Key
}
func (h scanHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *scanHeap) Push(x any)   { *h = append(*h, x.(*scanCursor)) }
func (h *scanHeap) Pop() any     { old := *h; x := old[len(old)-1]; *h = old[:len(old)-1]; return x }

// mergeScan k-way merges per-partition ordered lists into one ordered
// list of at most count records (count < 0 = no limit). Partitions
// hold disjoint key sets, so no dedup is needed.
func mergeScan(lists [][]VersionedKV, count int) []VersionedKV {
	if len(lists) == 0 {
		return nil
	}
	if len(lists) == 1 {
		out := lists[0]
		if count >= 0 && len(out) > count {
			out = out[:count]
		}
		return out
	}
	h := make(scanHeap, 0, len(lists))
	total := 0
	for _, l := range lists {
		h = append(h, &scanCursor{kvs: l})
		total += len(l)
	}
	heap.Init(&h)
	if count >= 0 && total > count {
		total = count
	}
	out := make([]VersionedKV, 0, total)
	for h.Len() > 0 {
		if count >= 0 && len(out) >= count {
			break
		}
		c := h[0]
		out = append(out, c.kvs[c.i])
		c.i++
		if c.i == len(c.kvs) {
			heap.Pop(&h)
		} else {
			heap.Fix(&h, 0)
		}
	}
	return out
}

// ForEach visits every record of table in key order. The callback
// receives engine-owned immutable records and must not mutate them.
// The visit is one consistent snapshot of the whole table: a single
// consistent cut of the partitions' published roots is collected, then
// iteration runs entirely lock-free, so long validation scans (the
// CEW check phase) never block writers.
func (s *Store) ForEach(table string, fn func(key string, rec *VersionedRecord) bool) error {
	if len(s.parts) == 1 {
		return s.parts[0].forEach(table, fn)
	}
	snaps, err := s.snapshotTable(table)
	if err != nil {
		return err
	}
	lists := make([][]VersionedKV, 0, len(snaps))
	for _, ts := range snaps {
		if ts == nil || ts.size == 0 {
			continue
		}
		l := make([]VersionedKV, 0, ts.size)
		ts.ascend("", func(key string, val *VersionedRecord) bool {
			if val.deleted {
				return true
			}
			l = append(l, VersionedKV{Key: key, Record: val})
			return true
		})
		lists = append(lists, l)
	}
	for _, kv := range mergeScan(lists, -1) {
		if !fn(kv.Key, kv.Record) {
			break
		}
	}
	return nil
}

// Len returns the number of records in table.
func (s *Store) Len(table string) int {
	total := 0
	for _, p := range s.parts {
		total += p.len(table)
	}
	return total
}

// Tables returns the names of all tables that have ever been written.
func (s *Store) Tables() []string {
	seen := map[string]bool{}
	var names []string
	for _, p := range s.parts {
		for _, n := range p.tableNames() {
			if !seen[n] {
				seen[n] = true
				names = append(names, n)
			}
		}
	}
	sort.Strings(names)
	return names
}

// Sync flushes every WAL segment to stable storage.
func (s *Store) Sync() error {
	for _, p := range s.parts {
		if err := p.sync(); err != nil {
			return err
		}
	}
	return nil
}

// Close flushes and closes every partition. Further operations return
// ErrClosed.
func (s *Store) Close() error {
	s.stopVacuumLoop()
	var first error
	for _, p := range s.parts {
		if err := p.close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
