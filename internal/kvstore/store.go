package kvstore

import (
	"container/heap"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"ycsbt/internal/obs"
)

// Common storage errors. They are distinct from the db-layer
// sentinels so the engine can be used standalone; the binding in
// binding.go translates them.
var (
	// ErrNotFound reports that the key does not exist.
	ErrNotFound = errors.New("kvstore: key not found")
	// ErrVersionMismatch reports a failed conditional operation.
	ErrVersionMismatch = errors.New("kvstore: version mismatch")
	// ErrExists reports that a create-only put found an existing key.
	ErrExists = errors.New("kvstore: key already exists")
	// ErrClosed reports use after Close.
	ErrClosed = errors.New("kvstore: store is closed")
)

// VersionedRecord is a stored record together with its version. The
// version starts at 1 on insert and increments on every successful
// mutation; it is the engine's ETag and the compare handle of every
// conditional operation.
//
// Immutability contract: records returned by Get, Scan, BatchGet and
// ForEach are the engine's own stored values, shared with concurrent
// readers — not copies. Callers must treat them (the Fields map and
// every byte slice in it) as read-only, and call Clone before
// mutating. Writers uphold the other half of the contract: every
// mutation stores a freshly built record and never edits a published
// one in place.
type VersionedRecord struct {
	Version uint64
	Fields  map[string][]byte
}

// Clone deep-copies the record. Use it when a caller needs a private,
// mutable copy of an engine-returned record.
func (v *VersionedRecord) Clone() *VersionedRecord { return v.clone() }

// clone deep-copies the record (internal spelling; the write path uses
// it to build fresh merge results).
func (v *VersionedRecord) clone() *VersionedRecord {
	out := &VersionedRecord{Version: v.Version, Fields: make(map[string][]byte, len(v.Fields))}
	for f, b := range v.Fields {
		out.Fields[f] = append([]byte(nil), b...)
	}
	return out
}

// VersionedKV pairs a key with its versioned record in scan results.
type VersionedKV struct {
	Key    string
	Record *VersionedRecord
}

// AnyVersion passes any current version in conditional operations.
const AnyVersion = ^uint64(0)

// MustNotExist is the expected version for create-only puts.
const MustNotExist = uint64(0)

// DefaultShards is the partition count bindings use when the
// "kvstore.shards" property is absent.
const DefaultShards = 8

// manifestName is the file recording a sharded directory's layout.
const manifestName = "MANIFEST"

// Options configures a Store.
type Options struct {
	// Path is the WAL location; empty means a volatile in-memory
	// store with no durability. With a single shard it names the WAL
	// file itself (the original single-segment layout); with multiple
	// shards it names a directory holding one segment per shard
	// (wal-<shard>.log) plus a MANIFEST pinning the shard count.
	Path string
	// SyncWrites forces an fsync after every logged mutation (or, with
	// GroupCommit, makes every mutation wait for the window's shared
	// fsync). Off by default, trading durability for latency exactly
	// as the paper's "latency versus durability" discussion describes.
	SyncWrites bool
	// Shards is the number of hash partitions; values <= 1 mean a
	// single partition, which behaves exactly like the pre-sharding
	// engine. An existing on-disk layout always wins over this value:
	// a WAL file opens as one shard and a directory opens with its
	// MANIFEST's count, so reopening never re-routes keys away from
	// the segment that holds their history.
	Shards int
	// GroupCommit is the WAL group-commit window; zero disables it.
	// When positive, a per-shard background syncer fsyncs once per
	// window instead of once per mutation.
	GroupCommit time.Duration
	// Metrics, when non-nil, receives the engine's kvstore_* series
	// (per-shard op counts, WAL fsync latency, group-commit occupancy,
	// compactions, WAL size). Nil disables instrumentation entirely —
	// the hot paths then touch only nil no-op handles.
	Metrics *obs.Registry
}

// Store is a concurrent, versioned, ordered key-value store with
// multiple named tables, hash-partitioned across independent shards.
// Single-key operations are linearizable (each key lives in exactly
// one partition); Scan merges the per-partition trees into one
// key-ordered result.
type Store struct {
	parts []*partition
}

// Open creates or reopens a store. When opts.Path names an existing
// WAL layout the store replays every segment to rebuild its state,
// routing each record to its partition by key hash.
func Open(opts Options) (*Store, error) {
	shards := opts.Shards
	if shards <= 0 {
		shards = 1
	}
	if opts.Path == "" {
		s := &Store{parts: make([]*partition, shards)}
		for i := range s.parts {
			s.parts[i] = newPartition(nil)
		}
		s.instrument(opts.Metrics)
		return s, nil
	}

	// Resolve the on-disk layout. An existing layout wins over
	// opts.Shards so reopening a store never re-hashes keys into a
	// segment that does not hold their history.
	dirMode := shards > 1
	if fi, err := os.Stat(opts.Path); err == nil {
		dirMode = fi.IsDir()
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("kvstore: %w", err)
	}

	var segments []string
	if dirMode {
		if err := os.MkdirAll(opts.Path, 0o755); err != nil {
			return nil, fmt.Errorf("kvstore: %w", err)
		}
		n, err := loadOrInitManifest(filepath.Join(opts.Path, manifestName), shards)
		if err != nil {
			return nil, err
		}
		shards = n
		for i := 0; i < shards; i++ {
			segments = append(segments, filepath.Join(opts.Path, fmt.Sprintf("wal-%d.log", i)))
		}
	} else {
		shards = 1
		segments = []string{opts.Path}
	}

	s := &Store{parts: make([]*partition, shards)}
	for i := range s.parts {
		s.parts[i] = newPartition(nil)
	}
	// Recovery order: segments replay in ascending shard index. Each
	// record routes by key hash, so with a stable shard count segment
	// i rebuilds partition i; per-key history lives in one segment,
	// keeping blind replay order-correct.
	for i, path := range segments {
		w, err := openWAL(path, opts.SyncWrites, opts.GroupCommit)
		if err != nil {
			s.closePartial()
			return nil, err
		}
		if err := w.replay(func(rec walRecord) error {
			return s.part(rec.Key).applyReplay(rec)
		}); err != nil {
			w.close()
			s.closePartial()
			return nil, fmt.Errorf("kvstore: replaying %s: %w", path, err)
		}
		s.parts[i].wal = w
	}
	// Expose the recovered trees to the lock-free read path.
	for _, p := range s.parts {
		p.publishAll()
	}
	s.instrument(opts.Metrics)
	return s, nil
}

// closePartial releases WAL handles opened before an Open failure.
func (s *Store) closePartial() {
	for _, p := range s.parts {
		if p.wal != nil {
			p.wal.close()
		}
	}
}

// loadOrInitManifest reads the shard count pinned in a sharded
// directory, writing one with the requested count on first open.
func loadOrInitManifest(path string, shards int) (int, error) {
	b, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
		if err != nil {
			return 0, fmt.Errorf("kvstore: writing manifest: %w", err)
		}
		if _, err := fmt.Fprintf(f, "shards=%d\n", shards); err != nil {
			f.Close()
			return 0, fmt.Errorf("kvstore: writing manifest: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return 0, fmt.Errorf("kvstore: writing manifest: %w", err)
		}
		return shards, f.Close()
	}
	if err != nil {
		return 0, fmt.Errorf("kvstore: reading manifest: %w", err)
	}
	val, ok := strings.CutPrefix(strings.TrimSpace(string(b)), "shards=")
	if !ok {
		return 0, fmt.Errorf("kvstore: malformed manifest %s: %q", path, b)
	}
	n, err := strconv.Atoi(val)
	if err != nil || n < 1 {
		return 0, fmt.Errorf("kvstore: malformed manifest %s: %q", path, b)
	}
	return n, nil
}

// OpenMemory returns a volatile single-shard in-memory store. One
// partition preserves the pre-sharding semantics this constructor has
// always had — Scan and ForEach are atomic snapshots of the whole
// table. Use OpenMemoryShards (or Open) to opt into sharding.
func OpenMemory() *Store {
	return OpenMemoryShards(1)
}

// OpenMemoryShards returns a volatile in-memory store with n hash
// partitions (n <= 1 means one). With multiple shards, Scan snapshots
// are consistent per partition but not atomic across partitions; see
// Store.Scan.
func OpenMemoryShards(n int) *Store {
	s, _ := Open(Options{Shards: n}) // in-memory open cannot fail
	return s
}

// Shards returns the number of hash partitions.
func (s *Store) Shards() int { return len(s.parts) }

// shardOf hashes key with FNV-1a and reduces it to a partition index.
func shardOf(key string, n int) int {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return int(h % uint32(n))
}

// part routes a key to its partition.
func (s *Store) part(key string) *partition {
	if len(s.parts) == 1 {
		return s.parts[0]
	}
	return s.parts[shardOf(key, len(s.parts))]
}

// Get returns the record under table/key. The read is wait-free and
// allocation-free: it traverses the partition's atomically published
// snapshot with no lock and returns the engine-owned immutable record
// without cloning (see the VersionedRecord immutability contract).
func (s *Store) Get(table, key string) (*VersionedRecord, error) {
	return s.part(key).get(table, key)
}

// Put unconditionally stores fields under table/key (insert or full
// replace) and returns the new version.
func (s *Store) Put(table, key string, fields map[string][]byte) (uint64, error) {
	return s.part(key).putIfVersion(table, key, fields, AnyVersion)
}

// Insert stores fields under table/key only when the key does not
// already exist.
func (s *Store) Insert(table, key string, fields map[string][]byte) (uint64, error) {
	return s.part(key).putIfVersion(table, key, fields, MustNotExist)
}

// PutIfVersion stores fields under table/key when the current version
// matches expect: AnyVersion always matches, MustNotExist matches
// only a missing key, any other value must equal the stored version.
// It returns the new version, or ErrVersionMismatch / ErrExists.
func (s *Store) PutIfVersion(table, key string, fields map[string][]byte, expect uint64) (uint64, error) {
	return s.part(key).putIfVersion(table, key, fields, expect)
}

// Update merges fields into the existing record under table/key and
// returns the new version; the key must exist.
func (s *Store) Update(table, key string, fields map[string][]byte) (uint64, error) {
	return s.part(key).update(table, key, fields)
}

// Delete removes table/key; it returns ErrNotFound when absent.
func (s *Store) Delete(table, key string) error {
	return s.part(key).deleteIfVersion(table, key, AnyVersion)
}

// DeleteIfVersion removes table/key when its version matches expect
// (AnyVersion always matches).
func (s *Store) DeleteIfVersion(table, key string, expect uint64) error {
	return s.part(key).deleteIfVersion(table, key, expect)
}

// Scan returns up to count records with key ≥ startKey in key order,
// k-way merging the per-partition trees. A count < 0 means no limit.
// The scan is a true multi-partition snapshot read: one consistent cut
// of every partition's published root is collected (see
// snapshotTable), then the immutable trees are merged entirely
// lock-free, so the result is an atomic point-in-time view of the
// whole table even while writers and Compact run. Returned records are
// engine-owned immutable snapshots — never mutate them.
func (s *Store) Scan(table, startKey string, count int) ([]VersionedKV, error) {
	if len(s.parts) == 1 {
		return s.parts[0].scan(table, startKey, count)
	}
	snaps, err := s.snapshotTable(table)
	if err != nil {
		return nil, err
	}
	lists := make([][]VersionedKV, 0, len(snaps))
	for i, ts := range snaps {
		p := s.parts[i]
		p.metrics.scans.Inc()
		if ts == nil {
			continue
		}
		// Each partition contributes at most count records, so the
		// global first count live inside the union of the lists.
		kvs := scanSnap(ts, startKey, count)
		p.metrics.snapScanLen.Observe(float64(len(kvs)))
		if len(kvs) > 0 {
			lists = append(lists, kvs)
		}
	}
	return mergeScan(lists, count), nil
}

// scanCursor walks one partition's already-ordered scan result.
type scanCursor struct {
	kvs []VersionedKV
	i   int
}

type scanHeap []*scanCursor

func (h scanHeap) Len() int { return len(h) }
func (h scanHeap) Less(i, j int) bool {
	return h[i].kvs[h[i].i].Key < h[j].kvs[h[j].i].Key
}
func (h scanHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *scanHeap) Push(x any)   { *h = append(*h, x.(*scanCursor)) }
func (h *scanHeap) Pop() any     { old := *h; x := old[len(old)-1]; *h = old[:len(old)-1]; return x }

// mergeScan k-way merges per-partition ordered lists into one ordered
// list of at most count records (count < 0 = no limit). Partitions
// hold disjoint key sets, so no dedup is needed.
func mergeScan(lists [][]VersionedKV, count int) []VersionedKV {
	if len(lists) == 0 {
		return nil
	}
	if len(lists) == 1 {
		out := lists[0]
		if count >= 0 && len(out) > count {
			out = out[:count]
		}
		return out
	}
	h := make(scanHeap, 0, len(lists))
	total := 0
	for _, l := range lists {
		h = append(h, &scanCursor{kvs: l})
		total += len(l)
	}
	heap.Init(&h)
	if count >= 0 && total > count {
		total = count
	}
	out := make([]VersionedKV, 0, total)
	for h.Len() > 0 {
		if count >= 0 && len(out) >= count {
			break
		}
		c := h[0]
		out = append(out, c.kvs[c.i])
		c.i++
		if c.i == len(c.kvs) {
			heap.Pop(&h)
		} else {
			heap.Fix(&h, 0)
		}
	}
	return out
}

// ForEach visits every record of table in key order. The callback
// receives engine-owned immutable records and must not mutate them.
// The visit is one consistent snapshot of the whole table: a single
// consistent cut of the partitions' published roots is collected, then
// iteration runs entirely lock-free, so long validation scans (the
// CEW check phase) never block writers.
func (s *Store) ForEach(table string, fn func(key string, rec *VersionedRecord) bool) error {
	if len(s.parts) == 1 {
		return s.parts[0].forEach(table, fn)
	}
	snaps, err := s.snapshotTable(table)
	if err != nil {
		return err
	}
	lists := make([][]VersionedKV, 0, len(snaps))
	for _, ts := range snaps {
		if ts == nil || ts.size == 0 {
			continue
		}
		l := make([]VersionedKV, 0, ts.size)
		ts.ascend("", func(key string, val *VersionedRecord) bool {
			l = append(l, VersionedKV{Key: key, Record: val})
			return true
		})
		lists = append(lists, l)
	}
	for _, kv := range mergeScan(lists, -1) {
		if !fn(kv.Key, kv.Record) {
			break
		}
	}
	return nil
}

// Len returns the number of records in table.
func (s *Store) Len(table string) int {
	total := 0
	for _, p := range s.parts {
		total += p.len(table)
	}
	return total
}

// Tables returns the names of all tables that have ever been written.
func (s *Store) Tables() []string {
	seen := map[string]bool{}
	var names []string
	for _, p := range s.parts {
		for _, n := range p.tableNames() {
			if !seen[n] {
				seen[n] = true
				names = append(names, n)
			}
		}
	}
	sort.Strings(names)
	return names
}

// Sync flushes every WAL segment to stable storage.
func (s *Store) Sync() error {
	for _, p := range s.parts {
		if err := p.sync(); err != nil {
			return err
		}
	}
	return nil
}

// Close flushes and closes every partition. Further operations return
// ErrClosed.
func (s *Store) Close() error {
	var first error
	for _, p := range s.parts {
		if err := p.close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
