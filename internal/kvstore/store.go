package kvstore

import (
	"errors"
	"fmt"
	"sync"
)

// Common storage errors. They are distinct from the db-layer
// sentinels so the engine can be used standalone; the binding in
// binding.go translates them.
var (
	// ErrNotFound reports that the key does not exist.
	ErrNotFound = errors.New("kvstore: key not found")
	// ErrVersionMismatch reports a failed conditional operation.
	ErrVersionMismatch = errors.New("kvstore: version mismatch")
	// ErrExists reports that a create-only put found an existing key.
	ErrExists = errors.New("kvstore: key already exists")
	// ErrClosed reports use after Close.
	ErrClosed = errors.New("kvstore: store is closed")
)

// VersionedRecord is a stored record together with its version. The
// version starts at 1 on insert and increments on every successful
// mutation; it is the engine's ETag and the compare handle of every
// conditional operation.
type VersionedRecord struct {
	Version uint64
	Fields  map[string][]byte
}

// clone deep-copies the record so callers never alias engine memory.
func (v *VersionedRecord) clone() *VersionedRecord {
	out := &VersionedRecord{Version: v.Version, Fields: make(map[string][]byte, len(v.Fields))}
	for f, b := range v.Fields {
		out.Fields[f] = append([]byte(nil), b...)
	}
	return out
}

// VersionedKV pairs a key with its versioned record in scan results.
type VersionedKV struct {
	Key    string
	Record *VersionedRecord
}

// AnyVersion passes any current version in conditional operations.
const AnyVersion = ^uint64(0)

// MustNotExist is the expected version for create-only puts.
const MustNotExist = uint64(0)

// Options configures a Store.
type Options struct {
	// Path is the WAL file path; empty means a volatile in-memory
	// store with no durability.
	Path string
	// SyncWrites forces an fsync after every logged mutation. Off by
	// default, trading durability for latency exactly as the paper's
	// "latency versus durability" discussion describes.
	SyncWrites bool
}

// Store is a concurrent, versioned, ordered key-value store with
// multiple named tables. Single-key operations are linearizable.
type Store struct {
	mu     sync.RWMutex
	tables map[string]*btree
	wal    *wal
	closed bool
}

// Open creates or reopens a store. When opts.Path names an existing
// WAL the store replays it to rebuild its state.
func Open(opts Options) (*Store, error) {
	s := &Store{tables: make(map[string]*btree)}
	if opts.Path != "" {
		w, err := openWAL(opts.Path, opts.SyncWrites)
		if err != nil {
			return nil, err
		}
		if err := w.replay(func(rec walRecord) error {
			return s.applyReplay(rec)
		}); err != nil {
			w.close()
			return nil, fmt.Errorf("kvstore: replaying %s: %w", opts.Path, err)
		}
		s.wal = w
	}
	return s, nil
}

// OpenMemory returns a volatile in-memory store.
func OpenMemory() *Store {
	s, _ := Open(Options{})
	return s
}

// applyReplay applies one WAL record during recovery, bypassing
// version checks (the log records outcomes, not intents).
func (s *Store) applyReplay(rec walRecord) error {
	tree := s.table(rec.Table)
	switch rec.Op {
	case walPut:
		tree.put(rec.Key, &VersionedRecord{Version: rec.Version, Fields: rec.Fields})
	case walDelete:
		tree.delete(rec.Key)
	default:
		return fmt.Errorf("unknown WAL op %d", rec.Op)
	}
	return nil
}

// table returns the tree for name, creating it when absent. Caller
// must hold at least the read lock for lookups of existing tables;
// creation upgrades internally via the write path, so table is only
// called with the write lock held (or during single-threaded open).
func (s *Store) table(name string) *btree {
	t, ok := s.tables[name]
	if !ok {
		t = newBTree()
		s.tables[name] = t
	}
	return t
}

// readTable returns the tree for name or nil, for read paths.
func (s *Store) readTable(name string) *btree {
	return s.tables[name]
}

// Get returns a copy of the record under table/key.
func (s *Store) Get(table, key string) (*VersionedRecord, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	t := s.readTable(table)
	if t == nil {
		return nil, fmt.Errorf("%w: %s/%s", ErrNotFound, table, key)
	}
	v := t.get(key)
	if v == nil {
		return nil, fmt.Errorf("%w: %s/%s", ErrNotFound, table, key)
	}
	return v.clone(), nil
}

// Put unconditionally stores fields under table/key (insert or full
// replace) and returns the new version.
func (s *Store) Put(table, key string, fields map[string][]byte) (uint64, error) {
	return s.PutIfVersion(table, key, fields, AnyVersion)
}

// Insert stores fields under table/key only when the key does not
// already exist.
func (s *Store) Insert(table, key string, fields map[string][]byte) (uint64, error) {
	return s.PutIfVersion(table, key, fields, MustNotExist)
}

// PutIfVersion stores fields under table/key when the current version
// matches expect: AnyVersion always matches, MustNotExist matches
// only a missing key, any other value must equal the stored version.
// It returns the new version, or ErrVersionMismatch / ErrExists.
func (s *Store) PutIfVersion(table, key string, fields map[string][]byte, expect uint64) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, ErrClosed
	}
	t := s.table(table)
	cur := t.get(key)
	switch expect {
	case AnyVersion:
	case MustNotExist:
		if cur != nil {
			return 0, fmt.Errorf("%w: %s/%s", ErrExists, table, key)
		}
	default:
		if cur == nil {
			return 0, fmt.Errorf("%w: %s/%s not found, expected version %d", ErrVersionMismatch, table, key, expect)
		}
		if cur.Version != expect {
			return 0, fmt.Errorf("%w: %s/%s at version %d, expected %d", ErrVersionMismatch, table, key, cur.Version, expect)
		}
	}
	var next uint64 = 1
	if cur != nil {
		next = cur.Version + 1
	}
	stored := &VersionedRecord{Version: next, Fields: make(map[string][]byte, len(fields))}
	for f, b := range fields {
		stored.Fields[f] = append([]byte(nil), b...)
	}
	if s.wal != nil {
		if err := s.wal.append(walRecord{Op: walPut, Table: table, Key: key, Version: next, Fields: stored.Fields}); err != nil {
			return 0, err
		}
	}
	t.put(key, stored)
	return next, nil
}

// Update merges fields into the existing record under table/key and
// returns the new version; the key must exist.
func (s *Store) Update(table, key string, fields map[string][]byte) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, ErrClosed
	}
	t := s.table(table)
	cur := t.get(key)
	if cur == nil {
		return 0, fmt.Errorf("%w: %s/%s", ErrNotFound, table, key)
	}
	merged := cur.clone()
	merged.Version = cur.Version + 1
	for f, b := range fields {
		merged.Fields[f] = append([]byte(nil), b...)
	}
	if s.wal != nil {
		if err := s.wal.append(walRecord{Op: walPut, Table: table, Key: key, Version: merged.Version, Fields: merged.Fields}); err != nil {
			return 0, err
		}
	}
	t.put(key, merged)
	return merged.Version, nil
}

// Delete removes table/key; it returns ErrNotFound when absent.
func (s *Store) Delete(table, key string) error {
	return s.DeleteIfVersion(table, key, AnyVersion)
}

// DeleteIfVersion removes table/key when its version matches expect
// (AnyVersion always matches).
func (s *Store) DeleteIfVersion(table, key string, expect uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	t := s.table(table)
	cur := t.get(key)
	if cur == nil {
		return fmt.Errorf("%w: %s/%s", ErrNotFound, table, key)
	}
	if expect != AnyVersion && cur.Version != expect {
		return fmt.Errorf("%w: %s/%s at version %d, expected %d", ErrVersionMismatch, table, key, cur.Version, expect)
	}
	if s.wal != nil {
		if err := s.wal.append(walRecord{Op: walDelete, Table: table, Key: key}); err != nil {
			return err
		}
	}
	t.delete(key)
	return nil
}

// Scan returns up to count records with key ≥ startKey in key order.
// A count < 0 means no limit.
func (s *Store) Scan(table, startKey string, count int) ([]VersionedKV, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	t := s.readTable(table)
	if t == nil {
		return nil, nil
	}
	var out []VersionedKV
	t.ascend(startKey, func(key string, val *VersionedRecord) bool {
		if count >= 0 && len(out) >= count {
			return false
		}
		out = append(out, VersionedKV{Key: key, Record: val.clone()})
		return true
	})
	return out, nil
}

// ForEach visits every record of table in key order. The callback
// receives engine-owned data and must not retain or mutate it; it
// runs under the store's read lock.
func (s *Store) ForEach(table string, fn func(key string, rec *VersionedRecord) bool) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return ErrClosed
	}
	t := s.readTable(table)
	if t == nil {
		return nil
	}
	t.ascend("", fn)
	return nil
}

// Len returns the number of records in table.
func (s *Store) Len(table string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t := s.readTable(table)
	if t == nil {
		return 0
	}
	return t.size
}

// Tables returns the names of all tables that have ever been written.
func (s *Store) Tables() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.tables))
	for n := range s.tables {
		names = append(names, n)
	}
	return names
}

// Sync flushes the WAL to stable storage.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.wal == nil {
		return nil
	}
	return s.wal.sync()
}

// Close flushes and closes the store. Further operations return
// ErrClosed.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.wal != nil {
		return s.wal.close()
	}
	return nil
}
