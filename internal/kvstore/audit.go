package kvstore

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
)

// AuditEngine is a test-only poisoning wrapper enforcing the engine's
// immutability contract: it fingerprints every record it hands out
// from Get, BatchGet, Scan and ForEach, and Verify fails if any caller
// mutated one afterwards. Wrap an engine with NewAuditEngine, drive a
// binding or workload over it, then call Verify — any layer that edits
// an engine-owned record in place (instead of Clone-ing first) is
// caught with the table/key it corrupted. The wrapper serializes its
// bookkeeping and is not meant for performance runs.
type AuditEngine struct {
	Engine

	mu      sync.Mutex
	handed  []auditEntry
	tracked map[*VersionedRecord]bool
}

type auditEntry struct {
	rec        *VersionedRecord
	sum        uint64
	table, key string
}

// NewAuditEngine wraps inner, recording every record it returns.
func NewAuditEngine(inner Engine) *AuditEngine {
	return &AuditEngine{Engine: inner, tracked: make(map[*VersionedRecord]bool)}
}

// fingerprint hashes a record's version and (sorted) fields.
func fingerprint(rec *VersionedRecord) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "v=%d;", rec.Version)
	names := make([]string, 0, len(rec.Fields))
	for f := range rec.Fields {
		names = append(names, f)
	}
	sort.Strings(names)
	for _, f := range names {
		fmt.Fprintf(h, "%s=", f)
		h.Write(rec.Fields[f])
		h.Write([]byte{0})
	}
	return h.Sum64()
}

func (a *AuditEngine) record(rec *VersionedRecord, table, key string) {
	if rec == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.tracked[rec] {
		return
	}
	a.tracked[rec] = true
	a.handed = append(a.handed, auditEntry{rec: rec, sum: fingerprint(rec), table: table, key: key})
}

func (a *AuditEngine) Get(table, key string) (*VersionedRecord, error) {
	rec, err := a.Engine.Get(table, key)
	a.record(rec, table, key)
	return rec, err
}

func (a *AuditEngine) BatchGet(reqs []GetReq) []GetResult {
	out := a.Engine.BatchGet(reqs)
	for i, r := range out {
		a.record(r.Record, reqs[i].Table, reqs[i].Key)
	}
	return out
}

func (a *AuditEngine) Scan(table, startKey string, count int) ([]VersionedKV, error) {
	kvs, err := a.Engine.Scan(table, startKey, count)
	for _, kv := range kvs {
		a.record(kv.Record, table, kv.Key)
	}
	return kvs, err
}

func (a *AuditEngine) GetAsOf(table, key string, ts int64) (*VersionedRecord, error) {
	rec, err := a.Engine.GetAsOf(table, key, ts)
	a.record(rec, table, key)
	return rec, err
}

func (a *AuditEngine) BatchGetAsOf(reqs []GetReq, ts int64) []GetResult {
	out := a.Engine.BatchGetAsOf(reqs, ts)
	for i, r := range out {
		a.record(r.Record, reqs[i].Table, reqs[i].Key)
	}
	return out
}

func (a *AuditEngine) ScanAsOf(table, startKey string, count int, ts int64) ([]VersionedKV, error) {
	kvs, err := a.Engine.ScanAsOf(table, startKey, count, ts)
	for _, kv := range kvs {
		a.record(kv.Record, table, kv.Key)
	}
	return kvs, err
}

func (a *AuditEngine) ForEach(table string, fn func(key string, rec *VersionedRecord) bool) error {
	return a.Engine.ForEach(table, func(key string, rec *VersionedRecord) bool {
		a.record(rec, table, key)
		return fn(key, rec)
	})
}

// Verify re-fingerprints every handed-out record and returns an error
// naming the first one a caller mutated (nil when the contract held).
func (a *AuditEngine) Verify() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, e := range a.handed {
		if fingerprint(e.rec) != e.sum {
			return fmt.Errorf("kvstore: record %s/%s (version %d) was mutated after the engine handed it out — callers must Clone before editing", e.table, e.key, e.rec.Version)
		}
	}
	return nil
}

// Handed reports how many distinct records the wrapper is tracking
// (so tests can assert the audit actually observed traffic).
func (a *AuditEngine) Handed() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.handed)
}
