package kvstore

import (
	"bytes"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func vfields(v string) map[string][]byte {
	return map[string][]byte{"v": []byte(v)}
}

// TestVersionChainAsOf walks one key through its whole lifecycle —
// insert, overwrite, delete, reinsert — and checks that a snapshot
// timestamp drawn between any two mutations keeps reading the state it
// saw, tombstone windows included.
func TestVersionChainAsOf(t *testing.T) {
	s := OpenMemory()
	defer s.Close()

	ts0 := s.SnapshotTS()
	if _, err := s.Put("t", "k", vfields("one")); err != nil {
		t.Fatal(err)
	}
	ts1 := s.SnapshotTS()
	if _, err := s.Put("t", "k", vfields("two")); err != nil {
		t.Fatal(err)
	}
	ts2 := s.SnapshotTS()
	if err := s.Delete("t", "k"); err != nil {
		t.Fatal(err)
	}
	ts3 := s.SnapshotTS()
	if _, err := s.Put("t", "k", vfields("four")); err != nil {
		t.Fatal(err)
	}
	ts4 := s.SnapshotTS()

	if _, err := s.GetAsOf("t", "k", ts0); !errors.Is(err, ErrNotFound) {
		t.Fatalf("before insert: got err %v, want ErrNotFound", err)
	}
	for _, tc := range []struct {
		ts   int64
		want string
	}{{ts1, "one"}, {ts2, "two"}, {ts4, "four"}} {
		rec, err := s.GetAsOf("t", "k", tc.ts)
		if err != nil {
			t.Fatalf("GetAsOf(%d): %v", tc.ts, err)
		}
		if got := string(rec.Fields["v"]); got != tc.want {
			t.Fatalf("GetAsOf(%d) = %q, want %q", tc.ts, got, tc.want)
		}
	}
	if _, err := s.GetAsOf("t", "k", ts3); !errors.Is(err, ErrNotFound) {
		t.Fatalf("inside tombstone window: got err %v, want ErrNotFound", err)
	}

	// The head keeps normal semantics and the version sequence runs
	// through the tombstone: put, put, delete, put = version 4.
	head, err := s.Get("t", "k")
	if err != nil {
		t.Fatal(err)
	}
	if head.Version != 4 || string(head.Fields["v"]) != "four" {
		t.Fatalf("head = v%d %q, want v4 \"four\"", head.Version, head.Fields["v"])
	}
}

// TestScanAsOfFrozenCut checks that a scan at a snapshot ts returns the
// table exactly as it stood then — overwrites invisible, later deletes
// still present, later inserts absent — while the head scan moves on.
func TestScanAsOfFrozenCut(t *testing.T) {
	s := OpenMemoryShards(4)
	defer s.Close()

	for i := 0; i < 10; i++ {
		if _, err := s.Put("t", fmt.Sprintf("k%02d", i), vfields(fmt.Sprintf("old%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	cut := s.SnapshotTS()

	if _, err := s.Put("t", "k03", vfields("new3")); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("t", "k07"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put("t", "k99", vfields("late")); err != nil {
		t.Fatal(err)
	}

	kvs, err := s.ScanAsOf("t", "", -1, cut)
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != 10 {
		t.Fatalf("as-of scan returned %d keys, want 10", len(kvs))
	}
	for i, kv := range kvs {
		wantKey := fmt.Sprintf("k%02d", i)
		wantVal := fmt.Sprintf("old%d", i)
		if kv.Key != wantKey || string(kv.Record.Fields["v"]) != wantVal {
			t.Fatalf("as-of scan[%d] = %s=%q, want %s=%q", i, kv.Key, kv.Record.Fields["v"], wantKey, wantVal)
		}
	}

	head, err := s.Scan("t", "", -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(head) != 10 { // 10 - deleted k07 + inserted k99
		t.Fatalf("head scan returned %d keys, want 10", len(head))
	}
	for _, kv := range head {
		if kv.Key == "k07" {
			t.Fatal("head scan still sees deleted k07")
		}
	}
}

// TestRetentionTrimsOnWritePath checks the inline trim: with a tiny
// retention window, rewriting one key over and over must not grow its
// chain without bound.
func TestRetentionTrimsOnWritePath(t *testing.T) {
	s, err := Open(Options{Retention: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	for i := 0; i < 64; i++ {
		if _, err := s.Put("t", "k", vfields(fmt.Sprintf("%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	head, err := s.Get("t", "k")
	if err != nil {
		t.Fatal(err)
	}
	if n := chainLength(head); n > 2 {
		t.Fatalf("chain grew to %d versions under nanosecond retention", n)
	}
}

// TestVacuumPurgesExpiredTombstones checks the background sweep: a
// deleted key's tombstone is reclaimable once it ages past retention,
// and the key leaves the tree entirely (Len drops, head read misses).
func TestVacuumPurgesExpiredTombstones(t *testing.T) {
	s, err := Open(Options{Retention: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	for i := 0; i < 8; i++ {
		if _, err := s.Put("t", fmt.Sprintf("k%d", i), vfields("x")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		if err := s.Delete("t", fmt.Sprintf("k%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Len("t"); got != 4 {
		t.Fatalf("live count before vacuum = %d, want 4", got)
	}
	time.Sleep(time.Millisecond) // let the tombstones age past retention
	if _, keys := s.Vacuum(); keys != 4 {
		t.Fatalf("vacuum purged %d keys, want 4", keys)
	}
	if got := s.Len("t"); got != 4 {
		t.Fatalf("live count after vacuum = %d, want 4", got)
	}
	if _, err := s.Get("t", "k0"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("purged key read: %v, want ErrNotFound", err)
	}
}

// TestPinHoldsVacuum is the pin/vacuum contract: versions visible at a
// pinned snapshot survive any number of Vacuum sweeps, and become
// reclaimable only after release.
func TestPinHoldsVacuum(t *testing.T) {
	s, err := Open(Options{Retention: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	if _, err := s.Put("t", "k", vfields("pinned")); err != nil {
		t.Fatal(err)
	}
	ts, release := s.Pin()
	for i := 0; i < 8; i++ {
		if _, err := s.Put("t", "k", vfields(fmt.Sprintf("later%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(time.Millisecond)
	s.Vacuum()
	rec, err := s.GetAsOf("t", "k", ts)
	if err != nil {
		t.Fatalf("pinned read after vacuum: %v", err)
	}
	if string(rec.Fields["v"]) != "pinned" {
		t.Fatalf("pinned read = %q, want \"pinned\"", rec.Fields["v"])
	}

	release()
	release() // idempotent
	time.Sleep(time.Millisecond)
	s.Vacuum()
	if _, err := s.GetAsOf("t", "k", ts); !errors.Is(err, ErrNotFound) {
		t.Fatalf("post-release read at %d: %v, want ErrNotFound (version reclaimed)", ts, err)
	}
}

// TestSetVacuumFloorHoldsVacuum checks the external watermark: an
// outer layer (the txn manager's oldest snapshot reader) can hold the
// reclaim horizon without taking an engine pin.
func TestSetVacuumFloorHoldsVacuum(t *testing.T) {
	s, err := Open(Options{Retention: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	if _, err := s.Put("t", "k", vfields("held")); err != nil {
		t.Fatal(err)
	}
	ts := s.SnapshotTS()
	s.SetVacuumFloor(ts)
	for i := 0; i < 8; i++ {
		if _, err := s.Put("t", "k", vfields("later")); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(time.Millisecond)
	s.Vacuum()
	if rec, err := s.GetAsOf("t", "k", ts); err != nil || string(rec.Fields["v"]) != "held" {
		t.Fatalf("watermark-held read = %v, %v; want \"held\"", rec, err)
	}
	s.SetVacuumFloor(0)
	time.Sleep(time.Millisecond)
	s.Vacuum()
	if _, err := s.GetAsOf("t", "k", ts); !errors.Is(err, ErrNotFound) {
		t.Fatalf("post-clear read: %v, want ErrNotFound", err)
	}
}

// TestWALReplayRebuildsChains checks durability of history: version
// chains (tombstones included) survive close/reopen, the clock resumes
// above everything replayed, and snapshot reads at pre-restart
// timestamps still answer.
func TestWALReplayRebuildsChains(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	s, err := Open(Options{Path: path, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put("t", "k", vfields("one")); err != nil {
		t.Fatal(err)
	}
	ts1 := s.SnapshotTS()
	if _, err := s.Put("t", "k", vfields("two")); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("t", "gone"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("sanity: %v", err)
	}
	if _, err := s.Put("t", "dead", vfields("x")); err != nil {
		t.Fatal(err)
	}
	ts2 := s.SnapshotTS()
	if err := s.Delete("t", "dead"); err != nil {
		t.Fatal(err)
	}
	maxTS := s.clock.Load()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(Options{Path: path, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if rec, err := s2.GetAsOf("t", "k", ts1); err != nil || string(rec.Fields["v"]) != "one" {
		t.Fatalf("replayed GetAsOf(ts1) = %v, %v; want \"one\"", rec, err)
	}
	if rec, err := s2.Get("t", "k"); err != nil || string(rec.Fields["v"]) != "two" {
		t.Fatalf("replayed head = %v, %v; want \"two\"", rec, err)
	}
	if rec, err := s2.GetAsOf("t", "dead", ts2); err != nil || string(rec.Fields["v"]) != "x" {
		t.Fatalf("replayed pre-delete read = %v, %v; want \"x\"", rec, err)
	}
	if _, err := s2.Get("t", "dead"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("replayed tombstone head read: %v, want ErrNotFound", err)
	}
	if got := s2.clock.Load(); got < maxTS {
		t.Fatalf("replayed clock %d below pre-restart max %d", got, maxTS)
	}
}

// TestPinnedReadsStableUnderChurn is the acceptance stress: reads at a
// pinned timestamp stay byte-identical while writers overwrite and
// delete the same keys, Compact rewrites the WAL segments, and Vacuum
// sweeps with an aggressive retention window. Run under -race by make
// check.
func TestPinnedReadsStableUnderChurn(t *testing.T) {
	const shards, keys = 4, 64
	s, err := Open(Options{
		Path:        filepath.Join(t.TempDir(), "wal"),
		Shards:      shards,
		GroupCommit: 200 * time.Microsecond,
		SyncWrites:  true,
		Retention:   5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	expect := make(map[string][]byte, keys)
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("k%04d", i)
		v := []byte(fmt.Sprintf("seed%d", i))
		if _, err := s.Put("t", k, map[string][]byte{"v": v}); err != nil {
			t.Fatal(err)
		}
		expect[k] = v
	}
	pinTS, release := s.Pin()
	defer release()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var bad atomic.Int64
	fail := func(format string, args ...any) {
		bad.Add(1)
		t.Errorf(format, args...)
	}

	// Writers: overwrite and periodically delete/reinsert the seeded
	// keys so tombstones and reinserts land on top of pinned versions.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for c := 0; ; c++ {
				select {
				case <-stop:
					return
				default:
				}
				k := fmt.Sprintf("k%04d", (w*17+c)%keys)
				if c%5 == 3 {
					if err := s.Delete("t", k); err != nil && !errors.Is(err, ErrNotFound) {
						fail("delete: %v", err)
						return
					}
				} else if _, err := s.Put("t", k, vfields(fmt.Sprintf("w%d.%d", w, c))); err != nil {
					fail("put: %v", err)
					return
				}
			}
		}(w)
	}
	// Compactor and vacuum, racing the pinned readers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := s.Compact(); err != nil {
				fail("compact: %v", err)
				return
			}
			s.Vacuum()
		}
	}()

	// Pinned readers: point reads and full scans at pinTS must match
	// the seeded snapshot byte for byte, forever.
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for i := 0; i < keys; i += 7 {
					k := fmt.Sprintf("k%04d", i)
					rec, err := s.GetAsOf("t", k, pinTS)
					if err != nil {
						fail("pinned get %s: %v", k, err)
						return
					}
					if !bytes.Equal(rec.Fields["v"], expect[k]) {
						fail("pinned get %s = %q, want %q", k, rec.Fields["v"], expect[k])
						return
					}
				}
				kvs, err := s.ScanAsOf("t", "", -1, pinTS)
				if err != nil {
					fail("pinned scan: %v", err)
					return
				}
				if len(kvs) != keys {
					fail("pinned scan saw %d keys, want %d", len(kvs), keys)
					return
				}
				for _, kv := range kvs {
					if !bytes.Equal(kv.Record.Fields["v"], expect[kv.Key]) {
						fail("pinned scan %s = %q, want %q", kv.Key, kv.Record.Fields["v"], expect[kv.Key])
						return
					}
				}
			}
		}()
	}

	d := 800 * time.Millisecond
	if testing.Short() {
		d = 400 * time.Millisecond
	}
	time.Sleep(d)
	close(stop)
	wg.Wait()
	if bad.Load() > 0 {
		t.Fatalf("%d pinned-read violations", bad.Load())
	}
}

// BenchmarkAsOfScanUnderWrites measures snapshot-scan throughput while
// writers churn the same table — the "long read-only scan under write
// load" shape the MVCC refactor exists for. Emitted into
// BENCH_mvcc.json by make bench-quick.
func BenchmarkAsOfScanUnderWrites(b *testing.B) {
	const keys = 1024
	s := OpenMemoryShards(8)
	defer s.Close()
	for i := 0; i < keys; i++ {
		if _, err := s.Put("t", fmt.Sprintf("k%05d", i), vfields("seed")); err != nil {
			b.Fatal(err)
		}
	}
	ts, release := s.Pin()
	defer release()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for c := 0; ; c++ {
				select {
				case <-stop:
					return
				default:
				}
				k := fmt.Sprintf("k%05d", (w*31+c)%keys)
				s.Put("t", k, vfields("churn"))
			}
		}(w)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kvs, err := s.ScanAsOf("t", "", -1, ts)
		if err != nil {
			b.Fatal(err)
		}
		if len(kvs) != keys {
			b.Fatalf("scan saw %d keys, want %d", len(kvs), keys)
		}
	}
	b.StopTimer()
	close(stop)
	wg.Wait()
}
