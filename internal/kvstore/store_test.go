package kvstore

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func fields(s string) map[string][]byte {
	return map[string][]byte{"field0": []byte(s)}
}

func TestStoreCRUD(t *testing.T) {
	s := OpenMemory()
	defer s.Close()

	v, err := s.Insert("t", "k", fields("v1"))
	if err != nil || v != 1 {
		t.Fatalf("Insert = %d, %v", v, err)
	}
	if _, err := s.Insert("t", "k", fields("v2")); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate Insert = %v", err)
	}
	got, err := s.Get("t", "k")
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != 1 || string(got.Fields["field0"]) != "v1" {
		t.Errorf("Get = %+v", got)
	}
	// Returned records are shared immutable snapshots; Clone yields a
	// private copy whose mutation never reaches engine memory.
	priv := got.Clone()
	priv.Fields["field0"][0] = 'X'
	priv.Fields["added"] = []byte("y")
	got2, _ := s.Get("t", "k")
	if string(got2.Fields["field0"]) != "v1" || got2.Fields["added"] != nil {
		t.Error("Clone aliased engine memory")
	}
	v, err = s.Put("t", "k", fields("v3"))
	if err != nil || v != 2 {
		t.Fatalf("Put = %d, %v", v, err)
	}
	v, err = s.Update("t", "k", map[string][]byte{"extra": []byte("e")})
	if err != nil || v != 3 {
		t.Fatalf("Update = %d, %v", v, err)
	}
	got3, _ := s.Get("t", "k")
	if string(got3.Fields["field0"]) != "v3" || string(got3.Fields["extra"]) != "e" {
		t.Errorf("merged record = %+v", got3.Fields)
	}
	if _, err := s.Update("t", "missing", fields("x")); !errors.Is(err, ErrNotFound) {
		t.Errorf("Update missing = %v", err)
	}
	if err := s.Delete("t", "k"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("t", "k"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get after delete = %v", err)
	}
	if err := s.Delete("t", "k"); !errors.Is(err, ErrNotFound) {
		t.Errorf("double Delete = %v", err)
	}
	if _, err := s.Get("other", "k"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get missing table = %v", err)
	}
}

func TestStoreConditionalPut(t *testing.T) {
	s := OpenMemory()
	defer s.Close()

	v1, err := s.PutIfVersion("t", "k", fields("a"), MustNotExist)
	if err != nil || v1 != 1 {
		t.Fatalf("create = %d, %v", v1, err)
	}
	// Wrong version fails and does not mutate.
	if _, err := s.PutIfVersion("t", "k", fields("b"), 99); !errors.Is(err, ErrVersionMismatch) {
		t.Fatalf("stale CAS = %v", err)
	}
	got, _ := s.Get("t", "k")
	if string(got.Fields["field0"]) != "a" || got.Version != 1 {
		t.Errorf("failed CAS mutated record: %+v", got)
	}
	// Right version succeeds.
	v2, err := s.PutIfVersion("t", "k", fields("b"), 1)
	if err != nil || v2 != 2 {
		t.Fatalf("CAS = %d, %v", v2, err)
	}
	// CAS on a missing key fails with version mismatch.
	if _, err := s.PutIfVersion("t", "nope", fields("x"), 1); !errors.Is(err, ErrVersionMismatch) {
		t.Errorf("CAS on missing key = %v", err)
	}
	// Conditional delete.
	if err := s.DeleteIfVersion("t", "k", 1); !errors.Is(err, ErrVersionMismatch) {
		t.Errorf("stale conditional delete = %v", err)
	}
	if err := s.DeleteIfVersion("t", "k", 2); err != nil {
		t.Errorf("conditional delete = %v", err)
	}
}

func TestStoreCASIsAtomic(t *testing.T) {
	// Many goroutines CAS-increment one counter; every increment must
	// be preserved (no lost updates through the conditional path).
	s := OpenMemory()
	defer s.Close()
	if _, err := s.Insert("t", "ctr", map[string][]byte{"n": []byte("0")}); err != nil {
		t.Fatal(err)
	}
	const workers, per = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				for {
					cur, err := s.Get("t", "ctr")
					if err != nil {
						t.Error(err)
						return
					}
					var n int
					fmt.Sscanf(string(cur.Fields["n"]), "%d", &n)
					next := map[string][]byte{"n": []byte(fmt.Sprintf("%d", n+1))}
					if _, err := s.PutIfVersion("t", "ctr", next, cur.Version); err == nil {
						break
					} else if !errors.Is(err, ErrVersionMismatch) {
						t.Error(err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	got, _ := s.Get("t", "ctr")
	if string(got.Fields["n"]) != fmt.Sprintf("%d", workers*per) {
		t.Errorf("counter = %s, want %d", got.Fields["n"], workers*per)
	}
	if got.Version != uint64(workers*per+1) {
		t.Errorf("version = %d, want %d", got.Version, workers*per+1)
	}
}

func TestStoreScanAndForEach(t *testing.T) {
	s := OpenMemory()
	defer s.Close()
	for i := 0; i < 20; i++ {
		if _, err := s.Put("t", fmt.Sprintf("k%02d", i), fields(fmt.Sprint(i))); err != nil {
			t.Fatal(err)
		}
	}
	kvs, err := s.Scan("t", "k05", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != 3 || kvs[0].Key != "k05" || kvs[2].Key != "k07" {
		t.Errorf("Scan = %+v", kvs)
	}
	// Unlimited scan.
	kvs, _ = s.Scan("t", "", -1)
	if len(kvs) != 20 {
		t.Errorf("unlimited scan = %d records", len(kvs))
	}
	// Scan of a missing table is empty, not an error.
	kvs, err = s.Scan("missing", "", 10)
	if err != nil || kvs != nil {
		t.Errorf("missing-table scan = %v, %v", kvs, err)
	}
	count := 0
	if err := s.ForEach("t", func(string, *VersionedRecord) bool {
		count++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if count != 20 {
		t.Errorf("ForEach visited %d", count)
	}
	// Early stop.
	count = 0
	s.ForEach("t", func(string, *VersionedRecord) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Errorf("ForEach early stop visited %d", count)
	}
	if s.Len("t") != 20 || s.Len("missing") != 0 {
		t.Errorf("Len = %d/%d", s.Len("t"), s.Len("missing"))
	}
}

func TestStoreTables(t *testing.T) {
	s := OpenMemory()
	defer s.Close()
	s.Put("a", "k", fields("1"))
	s.Put("b", "k", fields("2"))
	names := s.Tables()
	if len(names) != 2 {
		t.Errorf("Tables = %v", names)
	}
	got, err := s.Get("a", "k")
	if err != nil || string(got.Fields["field0"]) != "1" {
		t.Errorf("tables not isolated: %+v, %v", got, err)
	}
}

func TestStoreClosed(t *testing.T) {
	s := OpenMemory()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal("second close should be a no-op")
	}
	if _, err := s.Get("t", "k"); !errors.Is(err, ErrClosed) {
		t.Errorf("Get after close = %v", err)
	}
	if _, err := s.Put("t", "k", fields("v")); !errors.Is(err, ErrClosed) {
		t.Errorf("Put after close = %v", err)
	}
	if err := s.Delete("t", "k"); !errors.Is(err, ErrClosed) {
		t.Errorf("Delete after close = %v", err)
	}
	if _, err := s.Scan("t", "", 1); !errors.Is(err, ErrClosed) {
		t.Errorf("Scan after close = %v", err)
	}
	if err := s.Sync(); !errors.Is(err, ErrClosed) {
		t.Errorf("Sync after close = %v", err)
	}
}

func TestWALDurability(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.wal")

	s, err := Open(Options{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Insert("t", "a", fields("1")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put("t", "b", fields("2")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Update("t", "a", map[string][]byte{"x": []byte("y")}); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("t", "b"); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(Options{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got, err := r.Get("t", "a")
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Fields["field0"]) != "1" || string(got.Fields["x"]) != "y" {
		t.Errorf("recovered record = %+v", got.Fields)
	}
	if got.Version != 2 {
		t.Errorf("recovered version = %d, want 2", got.Version)
	}
	if _, err := r.Get("t", "b"); !errors.Is(err, ErrNotFound) {
		t.Errorf("deleted key resurrected: %v", err)
	}
	// Versions continue from the recovered point.
	v, err := r.Put("t", "a", fields("3"))
	if err != nil || v != 3 {
		t.Errorf("post-recovery Put = %d, %v", v, err)
	}
}

func TestWALTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.wal")

	s, err := Open(Options{Path: path, SyncWrites: true})
	if err != nil {
		t.Fatal(err)
	}
	s.Insert("t", "good", fields("1"))
	s.Close()

	// Simulate a crash mid-append: garbage partial frame at the tail.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0x05, 0x00, 0x00, 0x00, 0xde, 0xad}) // truncated frame
	f.Close()

	r, err := Open(Options{Path: path})
	if err != nil {
		t.Fatalf("reopen with torn tail: %v", err)
	}
	defer r.Close()
	if _, err := r.Get("t", "good"); err != nil {
		t.Errorf("good prefix lost: %v", err)
	}
	// The store must be writable after truncation.
	if _, err := r.Put("t", "new", fields("2")); err != nil {
		t.Errorf("Put after torn-tail recovery: %v", err)
	}
}

func TestWALCorruptCRCStopsReplay(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.wal")

	s, _ := Open(Options{Path: path, SyncWrites: true})
	s.Insert("t", "a", fields("1"))
	s.Insert("t", "b", fields("2"))
	s.Close()

	// Flip a byte in the last frame's payload.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	r, err := Open(Options{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.Get("t", "a"); err != nil {
		t.Errorf("first record lost: %v", err)
	}
	if _, err := r.Get("t", "b"); !errors.Is(err, ErrNotFound) {
		t.Errorf("corrupt record replayed: %v", err)
	}
}

func TestWALRecordRoundTrip(t *testing.T) {
	cases := []walRecord{
		{Op: walPut, Table: "t", Key: "k", Version: 7, Fields: map[string][]byte{"a": []byte("1"), "b": nil}},
		{Op: walDelete, Table: "usertable", Key: "user123"},
		{Op: walPut, Table: "", Key: "", Version: 0, Fields: nil},
	}
	for _, want := range cases {
		got, err := decodeWALRecord(encodeWALRecord(want))
		if err != nil {
			t.Fatalf("round trip %+v: %v", want, err)
		}
		if got.Op != want.Op || got.Table != want.Table || got.Key != want.Key || got.Version != want.Version {
			t.Errorf("round trip = %+v, want %+v", got, want)
		}
		if len(got.Fields) != len(want.Fields) {
			t.Errorf("fields = %v, want %v", got.Fields, want.Fields)
		}
		for f, v := range want.Fields {
			if string(got.Fields[f]) != string(v) {
				t.Errorf("field %s = %q, want %q", f, got.Fields[f], v)
			}
		}
	}
}

func TestWALDecodeErrors(t *testing.T) {
	if _, err := decodeWALRecord(nil); err == nil {
		t.Error("empty payload should fail")
	}
	if _, err := decodeWALRecord([]byte{walPut}); err == nil {
		t.Error("truncated payload should fail")
	}
	// Valid record plus trailing garbage must fail.
	p := append(encodeWALRecord(walRecord{Op: walDelete, Table: "t", Key: "k"}), 0xFF)
	if _, err := decodeWALRecord(p); err == nil {
		t.Error("trailing bytes should fail")
	}
}

func TestStoreConcurrentMixed(t *testing.T) {
	s := OpenMemory()
	defer s.Close()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				key := fmt.Sprintf("k%d", (w*300+i)%100)
				switch i % 4 {
				case 0:
					s.Put("t", key, fields("v"))
				case 1:
					s.Get("t", key)
				case 2:
					s.Scan("t", key, 5)
				case 3:
					s.Delete("t", key)
				}
			}
		}(w)
	}
	wg.Wait()
}

func BenchmarkStorePut(b *testing.B) {
	s := OpenMemory()
	defer s.Close()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Put("t", fmt.Sprintf("key%08d", i%100000), fields("value"))
	}
}

func BenchmarkStoreGet(b *testing.B) {
	s := OpenMemory()
	defer s.Close()
	for i := 0; i < 100000; i++ {
		s.Put("t", fmt.Sprintf("key%08d", i), fields("value"))
	}
	b.ResetTimer()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			s.Get("t", fmt.Sprintf("key%08d", i%100000))
			i++
		}
	})
}

func BenchmarkStorePutWAL(b *testing.B) {
	dir := b.TempDir()
	s, err := Open(Options{Path: filepath.Join(dir, "bench.wal")})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Put("t", fmt.Sprintf("key%08d", i%100000), fields("value"))
	}
}
