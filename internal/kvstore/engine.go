package kvstore

// Engine is the versioned ordered-KV contract the rest of the system
// programs against: point gets, conditional puts/deletes on record
// versions (the ETag idiom), ordered scans, full iteration, and
// maintenance hooks. The hash-partitioned Store is the embedded
// implementation; the interface is the seam future engines (an LSM
// variant, a remote store proxy) plug into without touching the
// layers above.
//
// All implementations must make single-key operations linearizable
// and Scan/ForEach results key-ordered.
//
// Immutability contract: records handed out by Get, BatchGet, Scan
// and ForEach are shared immutable snapshots, not private copies —
// callers must not mutate the Fields map or any byte slice in it (use
// VersionedRecord.Clone for a mutable copy), and implementations must
// never edit a handed-out record in place. This is what lets the
// partitioned store serve reads wait-free with zero allocations.
//
// Durability caveat: when a mutation returns an error after its WAL
// append (e.g. a failed group-commit fsync), the write's durability
// is unknown — it may already be visible to readers and recorded in
// the log, so it can survive a restart. An error from a mutation
// means "not known durable", not "rolled back".
type Engine interface {
	// Point operations.
	Get(table, key string) (*VersionedRecord, error)
	Put(table, key string, fields map[string][]byte) (uint64, error)
	Insert(table, key string, fields map[string][]byte) (uint64, error)
	PutIfVersion(table, key string, fields map[string][]byte, expect uint64) (uint64, error)
	Update(table, key string, fields map[string][]byte) (uint64, error)
	Delete(table, key string) error
	DeleteIfVersion(table, key string, expect uint64) error

	// Multi-key operations. Results are positional (out[i] answers
	// in[i]); per-item failures never abort the rest of the batch.
	// Implementations should amortize per-call costs across the batch
	// — the partitioned store takes one lock acquisition and one
	// group-commit wait per touched partition, concurrent across
	// partitions.
	BatchGet(reqs []GetReq) []GetResult
	BatchApply(muts []Mutation) []MutResult

	// Ordered access.
	Scan(table, startKey string, count int) ([]VersionedKV, error)
	ForEach(table string, fn func(key string, rec *VersionedRecord) bool) error

	// Time travel (MVCC). SnapshotTS draws a snapshot timestamp: every
	// already-acknowledged commit is ≤ it and every later commit is >
	// it, so the as-of reads below form a stable consistent cut at
	// that ts. Pin additionally freezes the cut against version
	// reclamation until its release func is called — reads at a merely
	// drawn (unpinned) ts are only guaranteed within the retention
	// window. As-of reads resolve each key to its newest version with
	// commit ts ≤ the requested ts; deleted-at-ts keys are not found.
	SnapshotTS() int64
	Pin() (int64, func())
	GetAsOf(table, key string, ts int64) (*VersionedRecord, error)
	BatchGetAsOf(reqs []GetReq, ts int64) []GetResult
	ScanAsOf(table, startKey string, count int, ts int64) ([]VersionedKV, error)
	// ScanVersionsAsOf is ScanAsOf with tombstones included
	// (Record.Tombstone() distinguishes them) — the replication read a
	// migration copy uses so deletes travel with the data.
	ScanVersionsAsOf(table, startKey string, count int, ts int64) ([]VersionedKV, error)

	// Introspection.
	Len(table string) int
	Tables() []string

	// Maintenance and lifecycle. BulkLoad builds an empty table from a
	// sorted batch; Ingest merges versioned records (preserving
	// Version/CommitTS) into a live table — the shard-migration path.
	BulkLoad(table string, kvs []BulkKV) error
	Ingest(table string, kvs []BulkKV) error
	Compact() error
	WALSize() (int64, error)
	Sync() error
	Close() error
}

// The partitioned store is the reference Engine.
var _ Engine = (*Store)(nil)
