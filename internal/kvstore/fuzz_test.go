package kvstore

import (
	"strings"
	"testing"
)

// FuzzDecodeWALRecord checks the WAL decoder never panics and that
// anything it accepts re-encodes losslessly.
func FuzzDecodeWALRecord(f *testing.F) {
	f.Add(encodeWALRecord(walRecord{Op: walPut, Table: "t", Key: "k", Version: 3,
		Fields: map[string][]byte{"a": []byte("1")}}))
	f.Add(encodeWALRecord(walRecord{Op: walDelete, Table: "usertable", Key: "user99"}))
	f.Add([]byte{})
	f.Add([]byte{walPut})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := decodeWALRecord(data)
		if err != nil {
			return
		}
		// Round-trip property on accepted inputs.
		out, err2 := decodeWALRecord(encodeWALRecord(rec))
		if err2 != nil {
			t.Fatalf("re-decode failed: %v", err2)
		}
		if out.Op != rec.Op || out.Table != rec.Table || out.Key != rec.Key || out.Version != rec.Version {
			t.Fatalf("round trip mismatch: %+v vs %+v", out, rec)
		}
	})
}

// FuzzBTreeOperations drives the tree with arbitrary op/key bytes and
// checks structural invariants throughout.
func FuzzBTreeOperations(f *testing.F) {
	f.Add([]byte("iaibicid ra rb da ia"))
	f.Add([]byte{0, 1, 2, 3, 4, 5, 250, 251, 252})
	f.Fuzz(func(t *testing.T, script []byte) {
		bt := newBTree()
		ref := map[string]bool{}
		for i := 0; i+1 < len(script); i += 2 {
			key := strings.Repeat(string(rune('a'+script[i+1]%26)), int(script[i+1]%5)+1)
			switch script[i] % 3 {
			case 0:
				inserted := bt.put(key, rec(1))
				if inserted == ref[key] {
					t.Fatalf("put(%q) new=%v but ref says %v", key, inserted, ref[key])
				}
				ref[key] = true
			case 1:
				removed := bt.delete(key)
				if removed != ref[key] {
					t.Fatalf("delete(%q) = %v but ref says %v", key, removed, ref[key])
				}
				delete(ref, key)
			case 2:
				if got := bt.get(key) != nil; got != ref[key] {
					t.Fatalf("get(%q) = %v but ref says %v", key, got, ref[key])
				}
			}
		}
		if msg := bt.check(); msg != "" {
			t.Fatalf("invariant: %s", msg)
		}
		if bt.size != len(ref) {
			t.Fatalf("size %d, ref %d", bt.size, len(ref))
		}
	})
}
