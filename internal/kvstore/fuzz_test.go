package kvstore

import (
	"strings"
	"testing"
)

// FuzzDecodeWALRecord checks the WAL decoder never panics and that
// anything it accepts re-encodes losslessly.
func FuzzDecodeWALRecord(f *testing.F) {
	f.Add(encodeWALRecord(walRecord{Op: walPut, Table: "t", Key: "k", Version: 3,
		Fields: map[string][]byte{"a": []byte("1")}}))
	f.Add(encodeWALRecord(walRecord{Op: walDelete, Table: "usertable", Key: "user99"}))
	f.Add([]byte{})
	f.Add([]byte{walPut})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := decodeWALRecord(data)
		if err != nil {
			return
		}
		// Round-trip property on accepted inputs.
		out, err2 := decodeWALRecord(encodeWALRecord(rec))
		if err2 != nil {
			t.Fatalf("re-decode failed: %v", err2)
		}
		if out.Op != rec.Op || out.Table != rec.Table || out.Key != rec.Key || out.Version != rec.Version {
			t.Fatalf("round trip mismatch: %+v vs %+v", out, rec)
		}
	})
}

// FuzzVersionChain drives one key's chain with arbitrary
// append/trim/query ops and checks the chain primitives (link,
// cutChainAt, AsOf) against a flat reference model of retained
// versions.
func FuzzVersionChain(f *testing.F) {
	f.Add([]byte("aaabbbccc"))
	f.Add([]byte{0, 1, 2, 0, 0, 1, 2, 2, 1, 0})
	f.Add([]byte{255, 254, 0, 1, 128, 64, 32})
	f.Fuzz(func(t *testing.T, script []byte) {
		var head *VersionedRecord
		var ref []int64 // retained commit timestamps, ascending
		ts := int64(0)
		for i := 0; i+1 < len(script); i += 2 {
			arg := int64(script[i+1])
			switch script[i] % 3 {
			case 0: // append a new version (ts strictly increases)
				ts += arg%7 + 1
				v := &VersionedRecord{Version: uint64(len(ref) + 1), CommitTS: ts,
					Fields: map[string][]byte{"v": {script[i+1]}}}
				v.link(head)
				head = v
				ref = append(ref, ts)
			case 1: // trim at an arbitrary cut
				if head == nil {
					continue
				}
				cut := arg * ts / 255
				cutChainAt(head, cut)
				// Reference: keep the newest ts ≤ cut and everything newer.
				keepFrom := 0
				for j := len(ref) - 1; j >= 0; j-- {
					if ref[j] <= cut {
						keepFrom = j
						break
					}
				}
				ref = ref[keepFrom:]
			case 2: // query at an arbitrary ts
				q := arg * (ts + 1) / 255
				got := head.AsOf(q)
				var want int64 = -1
				for j := len(ref) - 1; j >= 0; j-- {
					if ref[j] <= q {
						want = ref[j]
						break
					}
				}
				if want == -1 {
					if got != nil {
						t.Fatalf("AsOf(%d) = ts %d, want nil (ref %v)", q, got.CommitTS, ref)
					}
				} else if got == nil || got.CommitTS != want {
					t.Fatalf("AsOf(%d) = %v, want ts %d (ref %v)", q, got, want, ref)
				}
			}
			if head != nil && chainLength(head) != len(ref) {
				t.Fatalf("chain length %d, ref %d (%v)", chainLength(head), len(ref), ref)
			}
		}
	})
}

// FuzzBTreeOperations drives the tree with arbitrary op/key bytes and
// checks structural invariants throughout.
func FuzzBTreeOperations(f *testing.F) {
	f.Add([]byte("iaibicid ra rb da ia"))
	f.Add([]byte{0, 1, 2, 3, 4, 5, 250, 251, 252})
	f.Fuzz(func(t *testing.T, script []byte) {
		bt := newBTree()
		ref := map[string]bool{}
		for i := 0; i+1 < len(script); i += 2 {
			key := strings.Repeat(string(rune('a'+script[i+1]%26)), int(script[i+1]%5)+1)
			switch script[i] % 3 {
			case 0:
				old := bt.put(key, rec(1))
				if (old != nil) != ref[key] {
					t.Fatalf("put(%q) displaced=%v but ref says %v", key, old != nil, ref[key])
				}
				ref[key] = true
			case 1:
				removed := bt.delete(key)
				if removed != ref[key] {
					t.Fatalf("delete(%q) = %v but ref says %v", key, removed, ref[key])
				}
				delete(ref, key)
			case 2:
				if got := bt.get(key) != nil; got != ref[key] {
					t.Fatalf("get(%q) = %v but ref says %v", key, got, ref[key])
				}
			}
		}
		if msg := bt.check(); msg != "" {
			t.Fatalf("invariant: %s", msg)
		}
		if bt.size != len(ref) {
			t.Fatalf("size %d, ref %d", bt.size, len(ref))
		}
	})
}
