package kvstore

import (
	"fmt"
	"sync"
)

// Multi-key engine operations. A batch is the engine-side half of the
// batched request path: the layers above coalesce many logical
// operations into one call, and the partitioned store executes the
// whole group with one lock acquisition and one group-commit wait per
// touched partition — concurrent across partitions — instead of one
// of each per key. That amortization is what lets a fat group commit
// absorb a fat network batch (the paper's Tier 5 observation that
// per-operation round trips dominate transactional overhead).

// GetReq names one record of a batched read.
type GetReq struct {
	Table string
	Key   string
}

// GetResult is the outcome of one GetReq: exactly one of Record and
// Err is set. Batches never fail wholesale on a per-item miss.
type GetResult struct {
	Record *VersionedRecord
	Err    error
}

// MutOp selects the kind of one batched mutation.
type MutOp uint8

const (
	// MutPut stores the full record, conditional on Expect exactly
	// like PutIfVersion (AnyVersion / MustNotExist / exact version).
	MutPut MutOp = iota
	// MutUpdate merges Fields into the existing record (key must
	// exist); Expect is ignored.
	MutUpdate
	// MutDelete removes the record, conditional on Expect exactly like
	// DeleteIfVersion.
	MutDelete
)

// Mutation is one write of a batched apply. The zero value of Expect
// is MustNotExist; callers performing unconditional puts or deletes
// must set Expect to AnyVersion explicitly.
type Mutation struct {
	Op     MutOp
	Table  string
	Key    string
	Fields map[string][]byte
	Expect uint64
}

// MutResult is the outcome of one Mutation: the new record version on
// success (0 for deletes), or the per-item error. A conditional
// failure on one item never aborts the rest of the batch.
type MutResult struct {
	Version uint64
	Err     error
}

// BatchGet reads every requested record, returning results in request
// order. Requests are grouped per partition; each group runs under a
// single read-lock acquisition, and groups run concurrently across
// partitions. Missing keys yield per-item ErrNotFound.
func (s *Store) BatchGet(reqs []GetReq) []GetResult {
	out := make([]GetResult, len(reqs))
	if len(reqs) == 0 {
		return out
	}
	if len(s.parts) == 1 {
		s.parts[0].getBatch(reqs, nil, out)
		return out
	}
	groups := s.groupByShard(len(reqs), func(i int) string { return reqs[i].Key })
	var wg sync.WaitGroup
	for shard, idx := range groups {
		wg.Add(1)
		go func(p *partition, idx []int) {
			defer wg.Done()
			p.getBatch(reqs, idx, out)
		}(s.parts[shard], idx)
	}
	wg.Wait()
	return out
}

// BatchApply executes every mutation, returning results in request
// order. Mutations are grouped per partition; each group is applied
// under a single write-lock acquisition with one WAL append per item
// and a single durability wait for the group's last frame, and groups
// run concurrently across partitions. Items within one partition
// apply in request order; per-item errors (version mismatches,
// missing keys) never abort the rest of the batch.
//
// The Engine durability caveat applies per item: an item whose WAL
// append succeeded but whose group sync failed is "not known durable",
// not rolled back.
func (s *Store) BatchApply(muts []Mutation) []MutResult {
	out := make([]MutResult, len(muts))
	if len(muts) == 0 {
		return out
	}
	if len(s.parts) == 1 {
		s.parts[0].applyBatch(muts, nil, out)
		return out
	}
	groups := s.groupByShard(len(muts), func(i int) string { return muts[i].Key })
	var wg sync.WaitGroup
	for shard, idx := range groups {
		wg.Add(1)
		go func(p *partition, idx []int) {
			defer wg.Done()
			p.applyBatch(muts, idx, out)
		}(s.parts[shard], idx)
	}
	wg.Wait()
	return out
}

// groupByShard buckets item indices 0..n-1 by the partition their key
// hashes to, preserving request order within each bucket.
func (s *Store) groupByShard(n int, keyOf func(int) string) map[int][]int {
	groups := make(map[int][]int, len(s.parts))
	for i := 0; i < n; i++ {
		shard := shardOf(keyOf(i), len(s.parts))
		groups[shard] = append(groups[shard], i)
	}
	return groups
}

// getBatch serves the given request indices (nil = all) from this
// partition with no lock: each table's snapshot is loaded once per run
// of same-table requests, so the common single-table batch reads one
// point-in-time view of the partition.
func (p *partition) getBatch(reqs []GetReq, idx []int, out []GetResult) {
	if idx == nil {
		p.metrics.gets.Add(int64(len(reqs)))
	} else {
		p.metrics.gets.Add(int64(len(idx)))
	}
	if p.closed.Load() {
		each(len(reqs), idx, func(i int) { out[i] = GetResult{Err: ErrClosed} })
		return
	}
	var (
		curTable string
		curSnap  *treeSnapshot
		have     bool
	)
	each(len(reqs), idx, func(i int) {
		if !have || reqs[i].Table != curTable {
			curTable, curSnap, have = reqs[i].Table, p.tableSnap(reqs[i].Table), true
		}
		if curSnap != nil {
			if v := curSnap.get(reqs[i].Key); v != nil && !v.deleted {
				out[i] = GetResult{Record: v}
				return
			}
		}
		out[i] = GetResult{Err: fmt.Errorf("%w: %s/%s", ErrNotFound, reqs[i].Table, reqs[i].Key)}
	})
}

// BatchGetAsOf is BatchGet at a snapshot timestamp: every requested
// record resolves through its version chain to the newest version ≤
// ts. Grouping and concurrency match BatchGet; each partition's
// snapshots are collected under a brief read lock so a previously
// drawn SnapshotTS is a stable cut (see GetAsOf).
func (s *Store) BatchGetAsOf(reqs []GetReq, ts int64) []GetResult {
	out := make([]GetResult, len(reqs))
	if len(reqs) == 0 {
		return out
	}
	if len(s.parts) == 1 {
		s.parts[0].getBatchAsOf(reqs, nil, out, ts)
		return out
	}
	groups := s.groupByShard(len(reqs), func(i int) string { return reqs[i].Key })
	var wg sync.WaitGroup
	for shard, idx := range groups {
		wg.Add(1)
		go func(p *partition, idx []int) {
			defer wg.Done()
			p.getBatchAsOf(reqs, idx, out, ts)
		}(s.parts[shard], idx)
	}
	wg.Wait()
	return out
}

// getBatchAsOf serves the given request indices (nil = all) as of ts.
func (p *partition) getBatchAsOf(reqs []GetReq, idx []int, out []GetResult, ts int64) {
	if idx == nil {
		p.metrics.gets.Add(int64(len(reqs)))
	} else {
		p.metrics.gets.Add(int64(len(idx)))
	}
	if p.closed.Load() {
		each(len(reqs), idx, func(i int) { out[i] = GetResult{Err: ErrClosed} })
		return
	}
	var (
		curTable string
		curSnap  *treeSnapshot
		have     bool
	)
	each(len(reqs), idx, func(i int) {
		if !have || reqs[i].Table != curTable {
			curTable = reqs[i].Table
			p.mu.RLock()
			curSnap = p.tableSnap(curTable)
			p.mu.RUnlock()
			have = true
		}
		if curSnap != nil {
			if v := asOf(curSnap.get(reqs[i].Key), ts); v != nil {
				out[i] = GetResult{Record: v}
				return
			}
		}
		out[i] = GetResult{Err: fmt.Errorf("%w: %s/%s as of %d", ErrNotFound, reqs[i].Table, reqs[i].Key, ts)}
	})
}

// applyBatch applies the given mutation indices (nil = all) to this
// partition: one lock acquisition, one WAL append per item, one
// durability wait for the group's final frame (which, per the WAL's
// in-order group sync, covers every earlier frame of the batch).
func (p *partition) applyBatch(muts []Mutation, idx []int, out []MutResult) {
	p.mu.Lock()
	if p.closed.Load() {
		p.mu.Unlock()
		each(len(muts), idx, func(i int) { out[i] = MutResult{Err: ErrClosed} })
		return
	}
	w := p.wal // captured under p.mu: compact may swap p.wal after unlock
	var maxSeq uint64
	var syncErrIdx []int // items whose durability rides on the group sync
	var touched []string // tables mutated by this batch (usually one)
	each(len(muts), idx, func(i int) {
		ver, seq, err := p.applyOneLocked(w, muts[i])
		out[i] = MutResult{Version: ver, Err: err}
		if err == nil {
			dup := false
			for _, t := range touched {
				if t == muts[i].Table {
					dup = true
					break
				}
			}
			if !dup {
				touched = append(touched, muts[i].Table)
			}
		}
		if seq != 0 {
			maxSeq = seq
			syncErrIdx = append(syncErrIdx, i)
		}
	})
	// One root swap per touched table: the whole batch becomes visible
	// to the lock-free read path atomically, so a concurrent scan never
	// observes a torn multi-key state within one partition.
	for _, t := range touched {
		p.publishLocked(t, p.tables[t])
	}
	p.mu.Unlock()
	if maxSeq != 0 {
		if err := w.waitDurable(maxSeq); err != nil {
			for _, i := range syncErrIdx {
				out[i] = MutResult{Err: err}
			}
		}
	}
}

// applyOneLocked evaluates and applies one mutation with p.mu held,
// returning the new version and the WAL sequence the caller must wait
// on (0 = no durability wait needed).
func (p *partition) applyOneLocked(w *wal, m Mutation) (uint64, uint64, error) {
	switch m.Op {
	case MutPut:
		p.metrics.puts.Inc()
		return p.putLocked(w, m.Table, m.Key, m.Fields, m.Expect, false)
	case MutUpdate:
		p.metrics.puts.Inc()
		return p.putLocked(w, m.Table, m.Key, m.Fields, AnyVersion, true)
	case MutDelete:
		p.metrics.deletes.Inc()
		seq, err := p.deleteLocked(w, m.Table, m.Key, m.Expect)
		return 0, seq, err
	default:
		return 0, 0, errBadMutOp(m.Op)
	}
}
