package txn

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"testing"

	"ycsbt/internal/db"
	"ycsbt/internal/kvstore"
	"ycsbt/internal/properties"
)

func newTestBinding(t *testing.T) (*Binding, *kvstore.Store) {
	t.Helper()
	inner := kvstore.OpenMemory()
	t.Cleanup(func() { inner.Close() })
	m, err := NewManager(Options{}, NewLocalStore("local", inner))
	if err != nil {
		t.Fatal(err)
	}
	return NewBinding(m), inner
}

func TestBindingAutoCommitCRUD(t *testing.T) {
	ctx := context.Background()
	b, _ := newTestBinding(t)
	if err := b.Init(properties.New()); err != nil {
		t.Fatal(err)
	}
	if err := b.Insert(ctx, "t", "k", db.Record{"f": []byte("1")}); err != nil {
		t.Fatal(err)
	}
	rec, err := b.Read(ctx, "t", "k", nil)
	if err != nil || string(rec["f"]) != "1" {
		t.Fatalf("Read = %v, %v", rec, err)
	}
	if err := b.Update(ctx, "t", "k", db.Record{"g": []byte("2")}); err != nil {
		t.Fatal(err)
	}
	rec, _ = b.Read(ctx, "t", "k", nil)
	if string(rec["f"]) != "1" || string(rec["g"]) != "2" {
		t.Errorf("merged = %v", rec)
	}
	kvs, err := b.Scan(ctx, "t", "", 10, nil)
	if err != nil || len(kvs) != 1 || kvs[0].Key != "k" {
		t.Errorf("Scan = %v, %v", kvs, err)
	}
	if err := b.Delete(ctx, "t", "k"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Read(ctx, "t", "k", nil); !errors.Is(err, db.ErrNotFound) {
		t.Errorf("Read deleted = %v", err)
	}
	if err := b.Cleanup(); err != nil {
		t.Fatal(err)
	}
}

func TestBindingTransactionalFlow(t *testing.T) {
	ctx := context.Background()
	b, inner := newTestBinding(t)

	tctx, err := b.Start(ctx)
	if err != nil {
		t.Fatal(err)
	}
	view := b.WithTx(tctx)
	if err := view.Insert(ctx, "t", "a", db.Record{"bal": []byte("10")}); err != nil {
		t.Fatal(err)
	}
	if err := view.Insert(ctx, "t", "b", db.Record{"bal": []byte("20")}); err != nil {
		t.Fatal(err)
	}
	// Nothing visible before commit.
	if _, err := inner.Get("t", "a"); !errors.Is(err, kvstore.ErrNotFound) {
		t.Errorf("uncommitted insert visible: %v", err)
	}
	if err := b.Commit(ctx, tctx); err != nil {
		t.Fatal(err)
	}
	if _, err := inner.Get("t", "a"); err != nil {
		t.Errorf("committed insert missing: %v", err)
	}

	// Abort path.
	tctx2, _ := b.Start(ctx)
	view2 := b.WithTx(tctx2)
	if err := view2.Update(ctx, "t", "a", db.Record{"bal": []byte("99")}); err != nil {
		t.Fatal(err)
	}
	if err := b.Abort(ctx, tctx2); err != nil {
		t.Fatal(err)
	}
	rec, _ := inner.Get("t", "a")
	if string(rec.Fields["bal"]) != "10" {
		t.Errorf("aborted update leaked: %s", rec.Fields["bal"])
	}
}

func TestBindingConflictSurfacesAsAborted(t *testing.T) {
	ctx := context.Background()
	b, _ := newTestBinding(t)
	if err := b.Insert(ctx, "t", "k", db.Record{"n": []byte("0")}); err != nil {
		t.Fatal(err)
	}
	t1, _ := b.Start(ctx)
	t2, _ := b.Start(ctx)
	v1 := b.WithTx(t1)
	v2 := b.WithTx(t2)
	if err := v1.Update(ctx, "t", "k", db.Record{"n": []byte("1")}); err != nil {
		t.Fatal(err)
	}
	if err := v2.Update(ctx, "t", "k", db.Record{"n": []byte("2")}); err != nil {
		t.Fatal(err)
	}
	if err := b.Commit(ctx, t1); err != nil {
		t.Fatal(err)
	}
	if err := b.Commit(ctx, t2); !errors.Is(err, db.ErrAborted) {
		t.Errorf("conflicting commit = %v, want ErrAborted", err)
	}
}

func TestBindingTxContextValidation(t *testing.T) {
	ctx := context.Background()
	b, _ := newTestBinding(t)
	if err := b.Commit(ctx, nil); err == nil {
		t.Error("nil context accepted")
	}
	if err := b.Commit(ctx, &db.TransactionContext{Handle: "garbage"}); err == nil {
		t.Error("foreign handle accepted")
	}
	// WithTx with a foreign handle falls back to the binding itself.
	if v := b.WithTx(&db.TransactionContext{}); v != b {
		t.Error("foreign WithTx should return the binding")
	}
}

func TestBindingInitBackends(t *testing.T) {
	for _, backend := range []string{"memory", "was", "gcs", "was+gcs"} {
		b := &Binding{}
		p := properties.FromMap(map[string]string{
			"txnkv.backend":           backend,
			"cloudsim.readlatency_us": "0",
		})
		if err := b.Init(p); err != nil {
			t.Fatalf("Init(%s) = %v", backend, err)
		}
		wantStores := 1
		if backend == "was+gcs" {
			wantStores = 2
		}
		if len(b.names) != wantStores {
			t.Errorf("%s: %d stores", backend, len(b.names))
		}
		b.Cleanup()
	}
	b := &Binding{}
	if err := b.Init(properties.FromMap(map[string]string{"txnkv.backend": "nope"})); err == nil {
		t.Error("unknown backend accepted")
	}
}

func TestBindingMultiStorePartitioning(t *testing.T) {
	ctx := context.Background()
	s1 := kvstore.OpenMemory()
	s2 := kvstore.OpenMemory()
	defer s1.Close()
	defer s2.Close()
	m, err := NewManager(Options{}, NewLocalStore("alpha", s1), NewLocalStore("beta", s2))
	if err != nil {
		t.Fatal(err)
	}
	b := NewBinding(m)
	const n = 50
	for i := 0; i < n; i++ {
		if err := b.Insert(ctx, "t", fmt.Sprintf("user%03d", i), db.Record{"f": []byte("v")}); err != nil {
			t.Fatal(err)
		}
	}
	// Keys must be spread across both stores.
	if s1.Len("t") == 0 || s2.Len("t") == 0 {
		t.Errorf("partitioning skewed: alpha=%d beta=%d", s1.Len("t"), s2.Len("t"))
	}
	if s1.Len("t")+s2.Len("t") != n {
		t.Errorf("records lost: %d + %d != %d", s1.Len("t"), s2.Len("t"), n)
	}
	// Cross-store scan merges both partitions in key order.
	kvs, err := b.Scan(ctx, "t", "", n, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != n {
		t.Fatalf("merged scan = %d records", len(kvs))
	}
	for i := 1; i < len(kvs); i++ {
		if kvs[i-1].Key >= kvs[i].Key {
			t.Fatal("merged scan out of order")
		}
	}
	// Every key reads back through the partitioned path.
	for i := 0; i < n; i++ {
		if _, err := b.Read(ctx, "t", fmt.Sprintf("user%03d", i), nil); err != nil {
			t.Fatal(err)
		}
	}
}

func TestBindingConcurrentTransfersPreserveInvariant(t *testing.T) {
	// End-to-end Tier 6 check through the binding: concurrent
	// transactional RMW via the db interface never breaks the sum.
	ctx := context.Background()
	b, inner := newTestBinding(t)
	const accounts = 8
	for i := 0; i < accounts; i++ {
		if err := b.Insert(ctx, "acct", fmt.Sprintf("a%d", i), db.Record{"bal": []byte("100")}); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				from := fmt.Sprintf("a%d", (w+i)%accounts)
				to := fmt.Sprintf("a%d", (w+i+3)%accounts)
				if from == to {
					continue
				}
				// One attempt per iteration; conflicts abort cleanly.
				tctx, err := b.Start(ctx)
				if err != nil {
					t.Error(err)
					return
				}
				view := b.WithTx(tctx)
				ok := func() bool {
					rf, err := view.Read(ctx, "acct", from, nil)
					if err != nil {
						return false
					}
					rt, err := view.Read(ctx, "acct", to, nil)
					if err != nil {
						return false
					}
					nf, _ := strconv.Atoi(string(rf["bal"]))
					nt, _ := strconv.Atoi(string(rt["bal"]))
					if view.Update(ctx, "acct", from, db.Record{"bal": []byte(strconv.Itoa(nf - 1))}) != nil {
						return false
					}
					return view.Update(ctx, "acct", to, db.Record{"bal": []byte(strconv.Itoa(nt + 1))}) == nil
				}()
				if ok {
					b.Commit(ctx, tctx) // conflict abort is fine
				} else {
					b.Abort(ctx, tctx)
				}
			}
		}(w)
	}
	wg.Wait()
	var sum int
	inner.ForEach("acct", func(_ string, rec *kvstore.VersionedRecord) bool {
		n, _ := strconv.Atoi(string(rec.Fields["bal"]))
		sum += n
		return true
	})
	if sum != accounts*100 {
		t.Errorf("sum = %d, want %d", sum, accounts*100)
	}
}
