package txn

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"testing"
	"time"

	"ycsbt/internal/cloudsim"
	"ycsbt/internal/kvstore"
	"ycsbt/internal/trace"
)

// runTracedWriteSkew drives concurrent write-skew-prone withdrawals
// through the transaction library with a trace recorder attached and
// returns the serializability report plus how many pair constraints
// were violated.
func runTracedWriteSkew(t *testing.T, serializable bool) (*trace.Report, int) {
	t.Helper()
	ctx := context.Background()
	inner := kvstore.OpenMemory()
	t.Cleanup(func() { inner.Close() })
	// Small per-request latency so transactions interleave on a
	// single CPU.
	store := cloudsim.NewOver(cloudsim.Config{
		Name:         "local",
		ReadLatency:  100 * time.Microsecond,
		WriteLatency: 200 * time.Microsecond,
	}, inner)
	rec := trace.NewRecorder()
	m, err := NewManager(Options{SerializableReads: serializable, Tracer: rec}, store)
	if err != nil {
		t.Fatal(err)
	}

	const pairs = 6
	// Deep balances keep the constraint satisfiable for many rounds,
	// so skew-shaped concurrent commits keep happening; the cycle
	// detector needs the interleaving shape, not an actual overdraft.
	if err := m.RunInTxn(ctx, 0, func(tx *Txn) error {
		for i := 0; i < pairs; i++ {
			if err := tx.Insert("local", "t", fmt.Sprintf("p%02da", i), bal(10000)); err != nil {
				return err
			}
			if err := tx.Insert("local", "t", fmt.Sprintf("p%02db", i), bal(10000)); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for w := 0; w < 12; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				pair := (w + i) % pairs
				ka := fmt.Sprintf("p%02da", pair)
				kb := fmt.Sprintf("p%02db", pair)
				// Workers in the two halves debit opposite sides, so
				// concurrent withdrawals against one pair write
				// different records — the write-skew shape.
				target := ka
				if w >= 6 {
					target = kb
				}
				m.RunInTxn(ctx, 0, func(tx *Txn) error {
					fa, err := tx.Read(ctx, "local", "t", ka)
					if err != nil {
						return err
					}
					fb, err := tx.Read(ctx, "local", "t", kb)
					if err != nil {
						return err
					}
					a, _ := strconv.ParseInt(string(fa["balance"]), 10, 64)
					b, _ := strconv.ParseInt(string(fb["balance"]), 10, 64)
					if a+b < 150 {
						return nil
					}
					cur := a
					if target == kb {
						cur = b
					}
					return tx.Write("local", "t", target, bal(cur-150))
				})
			}
		}(w)
	}
	wg.Wait()

	violations := 0
	for i := 0; i < pairs; i++ {
		ra, err := inner.Get("t", fmt.Sprintf("p%02da", i))
		if err != nil {
			t.Fatal(err)
		}
		rb, err := inner.Get("t", fmt.Sprintf("p%02db", i))
		if err != nil {
			t.Fatal(err)
		}
		a, _ := strconv.ParseInt(string(ra.Fields["balance"]), 10, 64)
		b, _ := strconv.ParseInt(string(rb.Fields["balance"]), 10, 64)
		if a+b < 0 {
			violations++
		}
	}
	return rec.Check(), violations
}

// TestTracedSerializabilityCheck runs the Zellag & Kemme-style cycle
// detection over real executions of the transaction library: snapshot
// mode must produce dependency cycles (write skew), serializable mode
// must not.
func TestTracedSerializabilityCheck(t *testing.T) {
	// Serializable mode: the trace of any run must be acyclic.
	repSer, _ := runTracedWriteSkew(t, true)
	if !repSer.Serializable() {
		t.Errorf("serializable mode produced dependency cycles: %s / %v",
			repSer, repSer.Violations)
	}
	if repSer.Transactions == 0 {
		t.Fatal("nothing traced")
	}

	// Snapshot mode: write skew is probabilistic; retry a few times.
	for attempt := 0; attempt < 5; attempt++ {
		repSnap, violations := runTracedWriteSkew(t, false)
		if !repSnap.Serializable() {
			t.Logf("snapshot mode: %s (invariant violations: %d)", repSnap, violations)
			return
		}
	}
	t.Error("snapshot mode never produced a dependency cycle in 5 attempts")
}
