package txn

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"testing"
	"time"

	"ycsbt/internal/kvstore"
)

func newTestManager(t *testing.T, opts Options) (*Manager, *kvstore.Store) {
	t.Helper()
	inner := kvstore.OpenMemory()
	t.Cleanup(func() { inner.Close() })
	m, err := NewManager(opts, NewLocalStore("local", inner))
	if err != nil {
		t.Fatal(err)
	}
	return m, inner
}

func bal(n int64) map[string][]byte {
	return map[string][]byte{"balance": []byte(strconv.FormatInt(n, 10))}
}

func getBal(t *testing.T, f map[string][]byte) int64 {
	t.Helper()
	n, err := strconv.ParseInt(string(f["balance"]), 10, 64)
	if err != nil {
		t.Fatalf("bad balance %q: %v", f["balance"], err)
	}
	return n
}

func TestCommitBasic(t *testing.T) {
	ctx := context.Background()
	m, inner := newTestManager(t, Options{})

	tx, err := m.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if tx.ID() == "" {
		t.Error("empty txn id")
	}
	if err := tx.Insert("", "acct", "a", bal(100)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Insert("", "acct", "b", bal(200)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(ctx); err != nil {
		t.Fatal(err)
	}

	// Both records visible, clean (no metadata), and the TSR cleaned up.
	for key, want := range map[string]int64{"a": 100, "b": 200} {
		rec, err := inner.Get("acct", key)
		if err != nil {
			t.Fatal(err)
		}
		if isPrepared(rec.Fields) {
			t.Errorf("%s still prepared after commit", key)
		}
		for f := range rec.Fields {
			if isMetaField(f) {
				t.Errorf("%s has leftover metadata %s", key, f)
			}
		}
		var got int64
		fmt.Sscanf(string(rec.Fields["balance"]), "%d", &got)
		if got != want {
			t.Errorf("%s = %d, want %d", key, got, want)
		}
	}
	if inner.Len(tsrTable) != 0 {
		t.Errorf("%d TSRs left behind", inner.Len(tsrTable))
	}
	commits, aborts, _, _ := m.Stats()
	if commits != 1 || aborts != 0 {
		t.Errorf("stats = %d commits, %d aborts", commits, aborts)
	}
}

func TestReadYourWrites(t *testing.T) {
	ctx := context.Background()
	m, _ := newTestManager(t, Options{})
	tx, _ := m.Begin(ctx)
	if err := tx.Insert("", "t", "k", bal(5)); err != nil {
		t.Fatal(err)
	}
	f, err := tx.Read(ctx, "", "t", "k")
	if err != nil {
		t.Fatal(err)
	}
	if getBal(t, f) != 5 {
		t.Errorf("read-your-writes = %v", f)
	}
	if err := tx.Delete("", "t", "k"); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Read(ctx, "", "t", "k"); !errors.Is(err, ErrNotFound) {
		t.Errorf("read of own delete = %v", err)
	}
	tx.Abort(ctx)
}

func TestAbortLeavesNoTrace(t *testing.T) {
	ctx := context.Background()
	m, inner := newTestManager(t, Options{})
	// Seed a committed record.
	if err := m.RunInTxn(ctx, 0, func(tx *Txn) error {
		return tx.Insert("", "t", "k", bal(10))
	}); err != nil {
		t.Fatal(err)
	}
	tx, _ := m.Begin(ctx)
	if err := tx.Write("", "t", "k", bal(999)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Insert("", "t", "new", bal(1)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Abort(ctx); err != nil {
		t.Fatal(err)
	}
	rec, err := inner.Get("t", "k")
	if err != nil {
		t.Fatal(err)
	}
	if string(rec.Fields["balance"]) != "10" {
		t.Errorf("aborted write leaked: %s", rec.Fields["balance"])
	}
	if _, err := inner.Get("t", "new"); !errors.Is(err, kvstore.ErrNotFound) {
		t.Errorf("aborted insert leaked: %v", err)
	}
	// Using the finished txn fails.
	if _, err := tx.Read(ctx, "", "t", "k"); !errors.Is(err, ErrTxnDone) {
		t.Errorf("read after abort = %v", err)
	}
	if err := tx.Commit(ctx); !errors.Is(err, ErrTxnDone) {
		t.Errorf("commit after abort = %v", err)
	}
	if err := tx.Abort(ctx); err != nil {
		t.Errorf("double abort = %v", err)
	}
}

func TestWriteWriteConflict(t *testing.T) {
	ctx := context.Background()
	m, _ := newTestManager(t, Options{})
	if err := m.RunInTxn(ctx, 0, func(tx *Txn) error {
		return tx.Insert("", "t", "k", bal(0))
	}); err != nil {
		t.Fatal(err)
	}

	t1, _ := m.Begin(ctx)
	t2, _ := m.Begin(ctx)
	// Both read the same version, both try to write.
	f1, err := t1.Read(ctx, "", "t", "k")
	if err != nil {
		t.Fatal(err)
	}
	f2, err := t2.Read(ctx, "", "t", "k")
	if err != nil {
		t.Fatal(err)
	}
	t1.Write("", "t", "k", bal(getBal(t, f1)+1))
	t2.Write("", "t", "k", bal(getBal(t, f2)+1))
	if err := t1.Commit(ctx); err != nil {
		t.Fatalf("first committer should win: %v", err)
	}
	if err := t2.Commit(ctx); !errors.Is(err, ErrConflict) {
		t.Fatalf("second committer should conflict, got %v", err)
	}
	// Final value reflects exactly one increment.
	var final int64
	m.RunInTxn(ctx, 0, func(tx *Txn) error {
		f, err := tx.Read(ctx, "", "t", "k")
		if err != nil {
			return err
		}
		final = getBal(t, f)
		return nil
	})
	if final != 1 {
		t.Errorf("final = %d, want 1", final)
	}
	_, _, conflicts, _ := m.Stats()
	if conflicts != 1 {
		t.Errorf("conflicts = %d", conflicts)
	}
}

func TestInsertConflict(t *testing.T) {
	ctx := context.Background()
	m, _ := newTestManager(t, Options{})
	t1, _ := m.Begin(ctx)
	t2, _ := m.Begin(ctx)
	t1.Insert("", "t", "k", bal(1))
	t2.Insert("", "t", "k", bal(2))
	if err := t1.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(ctx); !errors.Is(err, ErrConflict) {
		t.Errorf("duplicate insert should conflict: %v", err)
	}
}

func TestDeleteMissingConflicts(t *testing.T) {
	ctx := context.Background()
	m, _ := newTestManager(t, Options{})
	tx, _ := m.Begin(ctx)
	tx.Delete("", "t", "never-existed")
	if err := tx.Commit(ctx); !errors.Is(err, ErrConflict) {
		t.Errorf("delete of missing key = %v", err)
	}
}

func TestTransactionalDelete(t *testing.T) {
	ctx := context.Background()
	m, inner := newTestManager(t, Options{})
	m.RunInTxn(ctx, 0, func(tx *Txn) error {
		return tx.Insert("", "t", "k", bal(7))
	})
	if err := m.RunInTxn(ctx, 0, func(tx *Txn) error {
		return tx.Delete("", "t", "k")
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := inner.Get("t", "k"); !errors.Is(err, kvstore.ErrNotFound) {
		t.Errorf("record survived transactional delete: %v", err)
	}
}

func TestNoLostUpdatesUnderConcurrency(t *testing.T) {
	// The core Tier 6 property: concurrent transactional RMW
	// increments never lose updates (every successful commit is
	// reflected), unlike the raw store.
	ctx := context.Background()
	m, _ := newTestManager(t, Options{})
	m.RunInTxn(ctx, 0, func(tx *Txn) error {
		return tx.Insert("", "t", "ctr", bal(0))
	})
	const workers, per = 8, 40
	var committed int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				err := m.RunInTxn(ctx, 50, func(tx *Txn) error {
					f, err := tx.Read(ctx, "", "t", "ctr")
					if err != nil {
						return err
					}
					return tx.Write("", "t", "ctr", bal(getBal(t, f)+1))
				})
				if err == nil {
					mu.Lock()
					committed++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	var final int64
	m.RunInTxn(ctx, 0, func(tx *Txn) error {
		f, err := tx.Read(ctx, "", "t", "ctr")
		if err != nil {
			return err
		}
		final = getBal(t, f)
		return nil
	})
	if final != committed {
		t.Errorf("final = %d but %d commits succeeded (lost/phantom updates)", final, committed)
	}
	if committed == 0 {
		t.Error("no transaction ever committed")
	}
}

func TestMoneyTransferInvariant(t *testing.T) {
	// CEW in miniature: concurrent transfers preserve total balance.
	ctx := context.Background()
	m, inner := newTestManager(t, Options{})
	const accounts = 10
	const total = int64(accounts * 100)
	m.RunInTxn(ctx, 0, func(tx *Txn) error {
		for i := 0; i < accounts; i++ {
			if err := tx.Insert("", "acct", fmt.Sprintf("a%02d", i), bal(100)); err != nil {
				return err
			}
		}
		return nil
	})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				from := fmt.Sprintf("a%02d", (w+i)%accounts)
				to := fmt.Sprintf("a%02d", (w+i+1)%accounts)
				m.RunInTxn(ctx, 20, func(tx *Txn) error {
					ff, err := tx.Read(ctx, "", "acct", from)
					if err != nil {
						return err
					}
					tf, err := tx.Read(ctx, "", "acct", to)
					if err != nil {
						return err
					}
					if err := tx.Write("", "acct", from, bal(getBal(t, ff)-1)); err != nil {
						return err
					}
					return tx.Write("", "acct", to, bal(getBal(t, tf)+1))
				})
			}
		}(w)
	}
	wg.Wait()
	var sum int64
	inner.ForEach("acct", func(_ string, rec *kvstore.VersionedRecord) bool {
		n, _ := strconv.ParseInt(string(rec.Fields["balance"]), 10, 64)
		sum += n
		return true
	})
	if sum != total {
		t.Errorf("total = %d, want %d (anomaly introduced)", sum, total)
	}
}

func TestReadAroundInFlightWriter(t *testing.T) {
	// A reader that encounters a prepared record from an in-flight
	// transaction sees the previous committed image.
	ctx := context.Background()
	m, inner := newTestManager(t, Options{RecoveryTimeout: time.Hour})
	m.RunInTxn(ctx, 0, func(tx *Txn) error {
		return tx.Insert("", "t", "k", bal(1))
	})

	// Manually install a prepared record as an in-flight writer
	// would: new value 999, prev image balance=1.
	cur, _ := inner.Get("t", "k")
	prev := encodeImage(cur.Fields)
	prepared := map[string][]byte{
		"balance":     []byte("999"),
		metaState:     []byte("P"),
		metaID:        []byte("tother-1"),
		metaCoord:     []byte("local"),
		metaPrepareTS: []byte(strconv.FormatInt(m.opts.Clock.Now(), 10)),
		metaPrev:      prev,
	}
	if _, err := inner.PutIfVersion("t", "k", prepared, cur.Version); err != nil {
		t.Fatal(err)
	}

	tx, _ := m.Begin(ctx)
	f, err := tx.Read(ctx, "", "t", "k")
	if err != nil {
		t.Fatal(err)
	}
	if getBal(t, f) != 1 {
		t.Errorf("read-around = %d, want previous image 1", getBal(t, f))
	}
	tx.Abort(ctx)
	// The prepared record must be untouched (writer still in flight).
	rec, _ := inner.Get("t", "k")
	if !isPrepared(rec.Fields) {
		t.Error("reader disturbed an in-flight prepare")
	}
}

func TestRecoveryRollsBackDeadWriter(t *testing.T) {
	ctx := context.Background()
	m, inner := newTestManager(t, Options{RecoveryTimeout: 10 * time.Millisecond})
	m.RunInTxn(ctx, 0, func(tx *Txn) error {
		return tx.Insert("", "t", "k", bal(42))
	})
	cur, _ := inner.Get("t", "k")
	prepared := map[string][]byte{
		"balance":     []byte("999"),
		metaState:     []byte("P"),
		metaID:        []byte("tdead-1"),
		metaCoord:     []byte("local"),
		metaPrepareTS: []byte(strconv.FormatInt(m.opts.Clock.Now()-int64(time.Second), 10)),
		metaPrev:      encodeImage(cur.Fields),
	}
	if _, err := inner.PutIfVersion("t", "k", prepared, cur.Version); err != nil {
		t.Fatal(err)
	}

	tx, _ := m.Begin(ctx)
	f, err := tx.Read(ctx, "", "t", "k")
	if err != nil {
		t.Fatal(err)
	}
	if getBal(t, f) != 42 {
		t.Errorf("recovered read = %d, want 42", getBal(t, f))
	}
	tx.Abort(ctx)
	rec, _ := inner.Get("t", "k")
	if isPrepared(rec.Fields) {
		t.Error("dead prepare not rolled back")
	}
	if string(rec.Fields["balance"]) != "42" {
		t.Errorf("rolled-back balance = %s", rec.Fields["balance"])
	}
	_, _, _, recovered := m.Stats()
	if recovered == 0 {
		t.Error("recovery not counted")
	}
}

func TestRecoveryRollsForwardCommittedWriter(t *testing.T) {
	// Prepared record + committed TSR = the writer crashed after its
	// commit point; readers must roll it FORWARD.
	ctx := context.Background()
	m, inner := newTestManager(t, Options{})
	m.RunInTxn(ctx, 0, func(tx *Txn) error {
		return tx.Insert("", "t", "k", bal(1))
	})
	cur, _ := inner.Get("t", "k")
	prepared := map[string][]byte{
		"balance":     []byte("777"),
		metaState:     []byte("P"),
		metaID:        []byte("tcrashed-1"),
		metaCoord:     []byte("local"),
		metaPrepareTS: []byte(strconv.FormatInt(m.opts.Clock.Now(), 10)),
		metaPrev:      encodeImage(cur.Fields),
	}
	if _, err := inner.PutIfVersion("t", "k", prepared, cur.Version); err != nil {
		t.Fatal(err)
	}
	if _, err := inner.Insert(tsrTable, "tcrashed-1", map[string][]byte{
		tsrState: []byte(tsrCommitted),
	}); err != nil {
		t.Fatal(err)
	}

	tx, _ := m.Begin(ctx)
	f, err := tx.Read(ctx, "", "t", "k")
	if err != nil {
		t.Fatal(err)
	}
	if getBal(t, f) != 777 {
		t.Errorf("roll-forward read = %d, want 777", getBal(t, f))
	}
	tx.Abort(ctx)
	rec, _ := inner.Get("t", "k")
	if isPrepared(rec.Fields) {
		t.Error("committed prepare not rolled forward")
	}
}

func TestRecoveryCommittedDelete(t *testing.T) {
	ctx := context.Background()
	m, inner := newTestManager(t, Options{})
	m.RunInTxn(ctx, 0, func(tx *Txn) error {
		return tx.Insert("", "t", "k", bal(1))
	})
	cur, _ := inner.Get("t", "k")
	prepared := map[string][]byte{
		metaState:     []byte("P"),
		metaID:        []byte("tdel-1"),
		metaCoord:     []byte("local"),
		metaPrepareTS: []byte(strconv.FormatInt(m.opts.Clock.Now(), 10)),
		metaPrev:      encodeImage(cur.Fields),
		metaDelete:    []byte("1"),
	}
	if _, err := inner.PutIfVersion("t", "k", prepared, cur.Version); err != nil {
		t.Fatal(err)
	}
	inner.Insert(tsrTable, "tdel-1", map[string][]byte{tsrState: []byte(tsrCommitted)})

	tx, _ := m.Begin(ctx)
	if _, err := tx.Read(ctx, "", "t", "k"); !errors.Is(err, ErrNotFound) {
		t.Errorf("read of committed delete = %v", err)
	}
	tx.Abort(ctx)
	if _, err := inner.Get("t", "k"); !errors.Is(err, kvstore.ErrNotFound) {
		t.Error("committed delete not applied during recovery")
	}
}

func TestSerializableReadValidation(t *testing.T) {
	ctx := context.Background()
	m, _ := newTestManager(t, Options{SerializableReads: true})
	m.RunInTxn(ctx, 0, func(tx *Txn) error {
		if err := tx.Insert("", "t", "x", bal(1)); err != nil {
			return err
		}
		return tx.Insert("", "t", "y", bal(1))
	})
	// T1 reads x, writes y. T2 updates x in between. With
	// serializable reads T1 must abort.
	t1, _ := m.Begin(ctx)
	if _, err := t1.Read(ctx, "", "t", "x"); err != nil {
		t.Fatal(err)
	}
	if err := m.RunInTxn(ctx, 0, func(tx *Txn) error {
		return tx.Write("", "t", "x", bal(99))
	}); err != nil {
		t.Fatal(err)
	}
	t1.Write("", "t", "y", bal(2))
	if err := t1.Commit(ctx); !errors.Is(err, ErrConflict) {
		t.Errorf("stale read should fail serializable validation: %v", err)
	}

	// Without the option the same schedule commits.
	m2, _ := newTestManager(t, Options{})
	m2.RunInTxn(ctx, 0, func(tx *Txn) error {
		if err := tx.Insert("", "t", "x", bal(1)); err != nil {
			return err
		}
		return tx.Insert("", "t", "y", bal(1))
	})
	t2, _ := m2.Begin(ctx)
	t2.Read(ctx, "", "t", "x")
	m2.RunInTxn(ctx, 0, func(tx *Txn) error {
		return tx.Write("", "t", "x", bal(99))
	})
	t2.Write("", "t", "y", bal(2))
	if err := t2.Commit(ctx); err != nil {
		t.Errorf("snapshot-mode commit = %v", err)
	}
}

func TestMultiStoreTransaction(t *testing.T) {
	ctx := context.Background()
	s1 := kvstore.OpenMemory()
	s2 := kvstore.OpenMemory()
	defer s1.Close()
	defer s2.Close()
	m, err := NewManager(Options{}, NewLocalStore("alpha", s1), NewLocalStore("beta", s2))
	if err != nil {
		t.Fatal(err)
	}
	// Empty store name must be rejected with multiple stores.
	tx, _ := m.Begin(ctx)
	if _, err := tx.Read(ctx, "", "t", "k"); !errors.Is(err, ErrUnknownStore) {
		t.Errorf("ambiguous store = %v", err)
	}
	tx.Abort(ctx)

	// A transfer across stores commits atomically.
	if err := m.RunInTxn(ctx, 0, func(tx *Txn) error {
		if err := tx.Insert("alpha", "acct", "a", bal(100)); err != nil {
			return err
		}
		return tx.Insert("beta", "acct", "b", bal(100))
	}); err != nil {
		t.Fatal(err)
	}
	if err := m.RunInTxn(ctx, 0, func(tx *Txn) error {
		fa, err := tx.Read(ctx, "alpha", "acct", "a")
		if err != nil {
			return err
		}
		fb, err := tx.Read(ctx, "beta", "acct", "b")
		if err != nil {
			return err
		}
		if err := tx.Write("alpha", "acct", "a", bal(getBal(t, fa)-30)); err != nil {
			return err
		}
		return tx.Write("beta", "acct", "b", bal(getBal(t, fb)+30))
	}); err != nil {
		t.Fatal(err)
	}
	ra, _ := s1.Get("acct", "a")
	rb, _ := s2.Get("acct", "b")
	if string(ra.Fields["balance"]) != "70" || string(rb.Fields["balance"]) != "130" {
		t.Errorf("cross-store transfer: a=%s b=%s", ra.Fields["balance"], rb.Fields["balance"])
	}
	// TSR lives on the coordinating store and is cleaned up on both.
	if s1.Len(tsrTable)+s2.Len(tsrTable) != 0 {
		t.Error("TSR left behind")
	}
	if _, err := m.store("gamma"); !errors.Is(err, ErrUnknownStore) {
		t.Errorf("unknown store = %v", err)
	}
}

func TestManagerValidation(t *testing.T) {
	if _, err := NewManager(Options{}); err == nil {
		t.Error("no stores should fail")
	}
	inner := kvstore.OpenMemory()
	defer inner.Close()
	if _, err := NewManager(Options{}, NewLocalStore("", inner)); err == nil {
		t.Error("empty store name should fail")
	}
	if _, err := NewManager(Options{}, NewLocalStore("x", inner), NewLocalStore("x", inner)); err == nil {
		t.Error("duplicate store name should fail")
	}
}

func TestReservedFieldRejected(t *testing.T) {
	ctx := context.Background()
	m, _ := newTestManager(t, Options{})
	tx, _ := m.Begin(ctx)
	defer tx.Abort(ctx)
	if err := tx.Write("", "t", "k", map[string][]byte{"_txn:state": []byte("C")}); err == nil {
		t.Error("reserved field accepted")
	}
}

func TestReadOnlyCommitIsTrivial(t *testing.T) {
	ctx := context.Background()
	m, inner := newTestManager(t, Options{})
	m.RunInTxn(ctx, 0, func(tx *Txn) error {
		return tx.Insert("", "t", "k", bal(1))
	})
	before := inner.Len(tsrTable)
	tx, _ := m.Begin(ctx)
	if _, err := tx.Read(ctx, "", "t", "k"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	if inner.Len(tsrTable) != before {
		t.Error("read-only commit wrote a TSR")
	}
}

func TestTxnScan(t *testing.T) {
	ctx := context.Background()
	m, _ := newTestManager(t, Options{})
	m.RunInTxn(ctx, 0, func(tx *Txn) error {
		for i := 0; i < 10; i++ {
			if err := tx.Insert("", "t", fmt.Sprintf("k%02d", i), bal(int64(i))); err != nil {
				return err
			}
		}
		return nil
	})
	tx, _ := m.Begin(ctx)
	defer tx.Abort(ctx)
	// Buffered changes must be visible in the scan: update k03,
	// delete k04, insert k10½.
	tx.Write("", "t", "k03", bal(333))
	tx.Delete("", "t", "k04")
	tx.Insert("", "t", "k035", bal(35))
	kvs, err := tx.Scan(ctx, "", "t", "k02", 5)
	if err != nil {
		t.Fatal(err)
	}
	gotKeys := make([]string, len(kvs))
	for i, kv := range kvs {
		gotKeys[i] = kv.Key
	}
	want := []string{"k02", "k03", "k035", "k05", "k06"}
	if len(gotKeys) != len(want) {
		t.Fatalf("scan keys = %v, want %v", gotKeys, want)
	}
	for i := range want {
		if gotKeys[i] != want[i] {
			t.Fatalf("scan keys = %v, want %v", gotKeys, want)
		}
	}
	for _, kv := range kvs {
		if kv.Key == "k03" && string(kv.Fields["balance"]) != "333" {
			t.Errorf("buffered update not visible in scan: %v", kv.Fields)
		}
	}
}

func TestHLCMonotonic(t *testing.T) {
	c := NewHLC()
	var mu sync.Mutex
	seen := make(map[int64]bool)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			prev := int64(0)
			for i := 0; i < 1000; i++ {
				now := c.Now()
				if now <= prev {
					t.Errorf("clock went backwards: %d after %d", now, prev)
					return
				}
				prev = now
				mu.Lock()
				if seen[now] {
					t.Errorf("duplicate timestamp %d", now)
					mu.Unlock()
					return
				}
				seen[now] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
}

func TestImageRoundTrip(t *testing.T) {
	cases := []map[string][]byte{
		{},
		{"a": []byte("1")},
		{"a": []byte("1"), "b": nil, "zz": []byte("value with spaces")},
		{"field0": make([]byte, 1000)},
	}
	for _, want := range cases {
		got, err := decodeImage(encodeImage(want))
		if err != nil {
			t.Fatalf("round trip of %v: %v", want, err)
		}
		if len(got) != len(want) {
			t.Errorf("got %d fields, want %d", len(got), len(want))
		}
		for f, v := range want {
			if string(got[f]) != string(v) {
				t.Errorf("field %s = %q, want %q", f, got[f], v)
			}
		}
	}
	// Metadata fields are excluded from images.
	img := encodeImage(map[string][]byte{"a": []byte("1"), metaState: []byte("P")})
	got, _ := decodeImage(img)
	if _, ok := got[metaState]; ok {
		t.Error("metadata leaked into image")
	}
	// Corrupt images fail loudly.
	if _, err := decodeImage([]byte{0xFF}); err == nil {
		t.Error("corrupt image accepted")
	}
	if _, err := decodeImage(append(encodeImage(map[string][]byte{"a": []byte("1")}), 0x00)); err == nil {
		t.Error("trailing bytes accepted")
	}
}

func TestRunInTxnRetries(t *testing.T) {
	ctx := context.Background()
	m, _ := newTestManager(t, Options{})
	attempts := 0
	err := m.RunInTxn(ctx, 5, func(tx *Txn) error {
		attempts++
		if attempts < 3 {
			return ErrConflict
		}
		return tx.Insert("", "t", "k", bal(1))
	})
	if err != nil || attempts != 3 {
		t.Errorf("RunInTxn = %v after %d attempts", err, attempts)
	}
	// Non-conflict errors pass through immediately.
	attempts = 0
	sentinel := errors.New("boom")
	err = m.RunInTxn(ctx, 5, func(tx *Txn) error {
		attempts++
		return sentinel
	})
	if !errors.Is(err, sentinel) || attempts != 1 {
		t.Errorf("RunInTxn error passthrough = %v after %d attempts", err, attempts)
	}
	// Exhausted retries surface ErrConflict.
	err = m.RunInTxn(ctx, 2, func(tx *Txn) error { return ErrConflict })
	if !errors.Is(err, ErrConflict) {
		t.Errorf("exhausted retries = %v", err)
	}
}
