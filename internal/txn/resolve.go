package txn

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"time"

	"ycsbt/internal/kvstore"
)

// isPrepared reports whether a stored record is a prepared image.
func isPrepared(fields map[string][]byte) bool {
	return string(fields[metaState]) == "P"
}

// isMetaField reports whether a field name is reserved for protocol
// metadata.
func isMetaField(name string) bool {
	return len(name) >= 5 && name[:5] == "_txn:"
}

// userFields strips protocol metadata, returning a copy with only
// application fields.
func userFields(fields map[string][]byte) map[string][]byte {
	out := make(map[string][]byte, len(fields))
	for f, v := range fields {
		if !isMetaField(f) {
			out[f] = append([]byte(nil), v...)
		}
	}
	return out
}

// readResolved gets a record and resolves it to its committed user
// image, returning the version that image is filed under.
func (m *Manager) readResolved(ctx context.Context, s Store, table, key string) (map[string][]byte, uint64, error) {
	rec, err := s.Get(ctx, table, key)
	if err != nil {
		if errors.Is(err, kvstore.ErrNotFound) {
			return nil, 0, fmt.Errorf("%w: %s/%s/%s", ErrNotFound, s.Name(), table, key)
		}
		return nil, 0, err
	}
	return m.resolveRecord(ctx, s, table, key, rec)
}

// resolveRecord turns a fetched record into its committed user image.
// Clean records pass through. For prepared records it consults the
// writer's TSR:
//
//   - TSR committed → the new image is the committed one; roll the
//     record forward opportunistically.
//   - TSR aborted, or TSR absent and the prepare is older than the
//     recovery timeout → the previous image is current; roll back.
//   - TSR absent and the prepare is fresh → the writer is in flight;
//     return the previous image (read-around) without touching the
//     record.
func (m *Manager) resolveRecord(ctx context.Context, s Store, table, key string, rec *kvstore.VersionedRecord) (map[string][]byte, uint64, error) {
	if !isPrepared(rec.Fields) {
		return userFields(rec.Fields), rec.Version, nil
	}

	writerID := string(rec.Fields[metaID])
	coordName := string(rec.Fields[metaCoord])
	prepTS, _ := strconv.ParseInt(string(rec.Fields[metaPrepareTS]), 10, 64)
	prevImage := rec.Fields[metaPrev]
	isDelete := len(rec.Fields[metaDelete]) > 0

	outcome := m.lookupTSR(ctx, coordName, writerID)

	switch outcome {
	case tsrCommitted:
		// Roll forward: the new image (or deletion) is committed.
		m.recovered.Add(1)
		if isDelete {
			if err := s.Delete(ctx, table, key, rec.Version); err != nil && !errors.Is(err, kvstore.ErrVersionMismatch) && !errors.Is(err, kvstore.ErrNotFound) {
				return nil, 0, err
			}
			return nil, 0, fmt.Errorf("%w: %s/%s/%s (deleted by committed txn)", ErrNotFound, s.Name(), table, key)
		}
		clean := userFields(rec.Fields)
		newVer, err := s.Put(ctx, table, key, clean, rec.Version)
		if err != nil {
			// Someone else rolled it forward first; reread.
			if errors.Is(err, kvstore.ErrVersionMismatch) {
				return m.readResolved(ctx, s, table, key)
			}
			return nil, 0, err
		}
		return clean, newVer, nil

	case tsrAborted:
		m.recovered.Add(1)
		return m.rollbackAndRead(ctx, s, table, key, rec.Version, prevImage, len(prevImage) > 0)

	default: // TSR absent: in-flight or crashed writer.
		age := time.Duration(m.opts.Clock.Now() - prepTS)
		if age > m.opts.RecoveryTimeout {
			// Presume the writer dead and roll back.
			m.recovered.Add(1)
			return m.rollbackAndRead(ctx, s, table, key, rec.Version, prevImage, len(prevImage) > 0)
		}
		// Read around the in-flight writer: its previous image is the
		// committed state.
		if len(prevImage) == 0 {
			return nil, 0, fmt.Errorf("%w: %s/%s/%s (prepared insert in flight)", ErrNotFound, s.Name(), table, key)
		}
		prev, err := decodeImage(prevImage)
		if err != nil {
			return nil, 0, err
		}
		// The version reported is the prepared record's version: a
		// committing reader that validates on it will conflict with
		// the in-flight writer, which is the safe outcome.
		return userFields(prev), rec.Version, nil
	}
}

// rollbackAndRead restores the previous committed image over a dead
// prepared record, then returns it.
func (m *Manager) rollbackAndRead(ctx context.Context, s Store, table, key string, preparedVer uint64, prevImage []byte, prevExisted bool) (map[string][]byte, uint64, error) {
	if err := m.rollbackRecord(ctx, s, table, key, preparedVer, prevImage, prevExisted); err != nil {
		return nil, 0, err
	}
	if !prevExisted {
		return nil, 0, fmt.Errorf("%w: %s/%s/%s (aborted insert)", ErrNotFound, s.Name(), table, key)
	}
	return m.readResolved(ctx, s, table, key)
}

// rollbackRecord undoes one prepared record: restore the previous
// image, or delete it when the prepare was an insert. Version races
// (someone else resolved it first) are not errors.
func (m *Manager) rollbackRecord(ctx context.Context, s Store, table, key string, preparedVer uint64, prevImage []byte, prevExisted bool) error {
	if !prevExisted {
		err := s.Delete(ctx, table, key, preparedVer)
		if err != nil && !errors.Is(err, kvstore.ErrVersionMismatch) && !errors.Is(err, kvstore.ErrNotFound) {
			return err
		}
		return nil
	}
	prev, err := decodeImage(prevImage)
	if err != nil {
		return err
	}
	if _, err := s.Put(ctx, table, key, prev, preparedVer); err != nil && !errors.Is(err, kvstore.ErrVersionMismatch) && !errors.Is(err, kvstore.ErrNotFound) {
		return err
	}
	return nil
}

// rollForwardRecord applies one committed write over its prepared
// image. Failures are swallowed: the TSR already made the commit
// durable and any reader can finish the roll-forward.
func (m *Manager) rollForwardRecord(ctx context.Context, s Store, table, key string, w *pendingWrite) {
	if !w.prepared {
		return
	}
	if w.kind == kindDelete {
		s.Delete(ctx, table, key, w.preparedVer)
		return
	}
	s.Put(ctx, table, key, w.fields, w.preparedVer)
}

// lookupTSR returns the TSR state for a transaction, or "" when the
// TSR is absent or the coordinating store unknown/unreachable.
func (m *Manager) lookupTSR(ctx context.Context, coordName, txnID string) string {
	coord, ok := m.stores[coordName]
	if !ok {
		return ""
	}
	rec, err := coord.Get(ctx, tsrTable, txnID)
	if err != nil {
		return ""
	}
	return string(rec.Fields[tsrState])
}
