package txn

import (
	"context"
	"strconv"
	"testing"
	"time"

	"ycsbt/internal/kvstore"
)

// installCrashedCommit fabricates the debris of a committer that died
// right after writing its TSR: prepared records + a committed TSR
// with the write set.
func installCrashedCommit(t *testing.T, m *Manager, inner *kvstore.Store, txnID string, keys []string, commitAge time.Duration) {
	t.Helper()
	for _, key := range keys {
		cur, err := inner.Get("t", key)
		if err != nil {
			t.Fatal(err)
		}
		if err := InstallPreparedForTest(inner, "t", key, cur, bal(777), txnID, "local"); err != nil {
			t.Fatal(err)
		}
	}
	wset := make([]wkey, 0, len(keys))
	for _, key := range keys {
		wset = append(wset, wkey{"local", "t", key})
	}
	commitTS := m.opts.Clock.Now() - int64(commitAge)
	if _, err := inner.Insert(tsrTable, txnID, map[string][]byte{
		tsrState:    []byte(tsrCommitted),
		tsrCommitTS: []byte(strconv.FormatInt(commitTS, 10)),
		tsrWriteSet: encodeWriteSet(wset),
	}); err != nil {
		t.Fatal(err)
	}
}

func TestVacuumFinishesCrashedCommits(t *testing.T) {
	ctx := context.Background()
	m, inner := newTestManager(t, Options{RecoveryTimeout: 50 * time.Millisecond})
	m.RunInTxn(ctx, 0, func(tx *Txn) error {
		for _, k := range []string{"a", "b", "c"} {
			if err := tx.Insert("", "t", k, bal(1)); err != nil {
				return err
			}
		}
		return nil
	})
	installCrashedCommit(t, m, inner, "tdead-42", []string{"a", "b"}, time.Second)

	removed, resolved, err := m.Vacuum(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 1 {
		t.Errorf("removed %d TSRs, want 1", removed)
	}
	if resolved != 2 {
		t.Errorf("resolved %d records, want 2", resolved)
	}
	// The prepared records were rolled forward to the committed value.
	for _, k := range []string{"a", "b"} {
		rec, err := inner.Get("t", k)
		if err != nil {
			t.Fatal(err)
		}
		if isPrepared(rec.Fields) {
			t.Errorf("%s still prepared after vacuum", k)
		}
		if string(rec.Fields["balance"]) != "777" {
			t.Errorf("%s = %s, want rolled-forward 777", k, rec.Fields["balance"])
		}
	}
	if inner.Len(tsrTable) != 0 {
		t.Errorf("%d TSRs remain", inner.Len(tsrTable))
	}
	// Untouched record unaffected.
	rec, _ := inner.Get("t", "c")
	if string(rec.Fields["balance"]) != "1" {
		t.Errorf("c = %s", rec.Fields["balance"])
	}
}

func TestVacuumSkipsYoungTSRs(t *testing.T) {
	ctx := context.Background()
	m, inner := newTestManager(t, Options{RecoveryTimeout: time.Hour})
	m.RunInTxn(ctx, 0, func(tx *Txn) error {
		return tx.Insert("", "t", "a", bal(1))
	})
	installCrashedCommit(t, m, inner, "tfresh-1", []string{"a"}, 0)
	removed, _, err := m.Vacuum(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 0 {
		t.Errorf("vacuum removed a fresh TSR")
	}
	if inner.Len(tsrTable) != 1 {
		t.Errorf("fresh TSR deleted")
	}
}

func TestVacuumEmptyStore(t *testing.T) {
	m, _ := newTestManager(t, Options{})
	removed, resolved, err := m.Vacuum(context.Background())
	if err != nil || removed != 0 || resolved != 0 {
		t.Errorf("vacuum on empty store = %d, %d, %v", removed, resolved, err)
	}
}

func TestVacuumLoop(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	m, inner := newTestManager(t, Options{RecoveryTimeout: time.Millisecond})
	m.RunInTxn(ctx, 0, func(tx *Txn) error {
		return tx.Insert("", "t", "a", bal(1))
	})
	installCrashedCommit(t, m, inner, "tloop-1", []string{"a"}, time.Second)
	done := make(chan struct{})
	go func() {
		defer close(done)
		m.VacuumLoop(ctx, 5*time.Millisecond, nil)
	}()
	deadline := time.Now().Add(2 * time.Second)
	for inner.Len(tsrTable) > 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	cancel()
	<-done
	if inner.Len(tsrTable) != 0 {
		t.Error("vacuum loop never cleaned the TSR")
	}
}

func TestWriteSetRoundTrip(t *testing.T) {
	in := []wkey{{"s1", "t1", "k1"}, {"s2", "t2", "key with spaces"}}
	got := decodeWriteSet(encodeWriteSet(in))
	if len(got) != len(in) {
		t.Fatalf("round trip = %v", got)
	}
	for i := range in {
		if got[i] != in[i] {
			t.Errorf("entry %d = %v, want %v", i, got[i], in[i])
		}
	}
	if decodeWriteSet(nil) != nil {
		t.Error("nil input should decode to nil")
	}
	if decodeWriteSet([]byte{0x05, 0x01}) != nil {
		t.Error("corrupt input should decode to nil")
	}
}
