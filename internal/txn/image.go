package txn

import (
	"encoding/binary"
	"errors"
	"sort"
)

// encodeImage serializes a committed record image (user fields only)
// into the metaPrev field of a prepared record. Layout: uvarint field
// count, then for each field (sorted by name for determinism) a
// uvarint-length-prefixed name and value.
func encodeImage(fields map[string][]byte) []byte {
	names := make([]string, 0, len(fields))
	for f := range fields {
		if !isMetaField(f) {
			names = append(names, f)
		}
	}
	sort.Strings(names)
	buf := binary.AppendUvarint(nil, uint64(len(names)))
	for _, f := range names {
		buf = binary.AppendUvarint(buf, uint64(len(f)))
		buf = append(buf, f...)
		v := fields[f]
		buf = binary.AppendUvarint(buf, uint64(len(v)))
		buf = append(buf, v...)
	}
	return buf
}

// decodeImage reverses encodeImage.
func decodeImage(buf []byte) (map[string][]byte, error) {
	n, w := binary.Uvarint(buf)
	if w <= 0 {
		return nil, errors.New("txn: corrupt image header")
	}
	buf = buf[w:]
	out := make(map[string][]byte, n)
	for i := uint64(0); i < n; i++ {
		name, rest, err := imageChunk(buf)
		if err != nil {
			return nil, err
		}
		val, rest, err := imageChunk(rest)
		if err != nil {
			return nil, err
		}
		out[string(name)] = append([]byte(nil), val...)
		buf = rest
	}
	if len(buf) != 0 {
		return nil, errors.New("txn: trailing image bytes")
	}
	return out, nil
}

func imageChunk(buf []byte) ([]byte, []byte, error) {
	l, w := binary.Uvarint(buf)
	if w <= 0 || uint64(len(buf)-w) < l {
		return nil, nil, errors.New("txn: truncated image chunk")
	}
	return buf[w : w+int(l)], buf[w+int(l):], nil
}
