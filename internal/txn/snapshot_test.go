package txn

import (
	"context"
	"errors"
	"math"
	"strconv"
	"testing"
	"time"

	"ycsbt/internal/kvstore"
)

// TestReadOnlyTxnFrozenReads is the core snapshot property: once a
// read-only transaction touches a store, every later read — point or
// scan — answers from the same frozen cut no matter how many write
// transactions commit after it.
func TestReadOnlyTxnFrozenReads(t *testing.T) {
	ctx := context.Background()
	m, _ := newTestManager(t, Options{})
	if err := m.RunInTxn(ctx, 0, func(tx *Txn) error {
		if err := tx.Insert("", "t", "a", bal(1)); err != nil {
			return err
		}
		return tx.Insert("", "t", "b", bal(2))
	}); err != nil {
		t.Fatal(err)
	}

	ro, err := m.BeginReadOnly(ctx)
	if err != nil {
		t.Fatal(err)
	}
	f, err := ro.Read(ctx, "", "t", "a")
	if err != nil {
		t.Fatal(err)
	}
	if getBal(t, f) != 1 {
		t.Fatalf("first read = %d, want 1", getBal(t, f))
	}
	if ro.ReadTS("") == 0 {
		t.Fatal("no snapshot ts pinned after first read")
	}
	if m.MinActiveSnapshot() == int64(math.MaxInt64) {
		t.Fatal("watermark empty while a snapshot txn is live")
	}

	// Writers commit on top: overwrite a, delete b, insert c.
	if err := m.RunInTxn(ctx, 0, func(tx *Txn) error {
		if err := tx.Write("", "t", "a", bal(100)); err != nil {
			return err
		}
		if err := tx.Delete("", "t", "b"); err != nil {
			return err
		}
		return tx.Insert("", "t", "c", bal(3))
	}); err != nil {
		t.Fatal(err)
	}

	if f, err = ro.Read(ctx, "", "t", "a"); err != nil || getBal(t, f) != 1 {
		t.Fatalf("re-read a = %v, %v; want 1", f, err)
	}
	if f, err = ro.Read(ctx, "", "t", "b"); err != nil || getBal(t, f) != 2 {
		t.Fatalf("read deleted-later b = %v, %v; want 2", f, err)
	}
	if _, err := ro.Read(ctx, "", "t", "c"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("read later-inserted c: %v, want ErrNotFound", err)
	}
	kvs, err := ro.Scan(ctx, "", "t", "", -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != 2 || kvs[0].Key != "a" || kvs[1].Key != "b" {
		t.Fatalf("snapshot scan = %v, want [a b]", kvs)
	}
	if err := ro.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	if m.MinActiveSnapshot() != int64(math.MaxInt64) {
		t.Fatal("watermark not cleared after commit")
	}

	// A fresh snapshot sees the new world.
	ro2, _ := m.BeginReadOnly(ctx)
	defer ro2.Abort(ctx)
	if f, err := ro2.Read(ctx, "", "t", "a"); err != nil || getBal(t, f) != 100 {
		t.Fatalf("fresh snapshot a = %v, %v; want 100", f, err)
	}
	if _, err := ro2.Read(ctx, "", "t", "b"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("fresh snapshot b: %v, want ErrNotFound", err)
	}
}

// TestReadOnlyTxnDoneAndUnsupported covers the bookkeeping edges: reads
// after Commit fail with ErrTxnDone, and a store without version
// history reports ErrSnapshotUnsupported.
func TestReadOnlyTxnDoneAndUnsupported(t *testing.T) {
	ctx := context.Background()
	m, _ := newTestManager(t, Options{})
	ro, _ := m.BeginReadOnly(ctx)
	if err := ro.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := ro.Read(ctx, "", "t", "k"); !errors.Is(err, ErrTxnDone) {
		t.Fatalf("read after commit: %v, want ErrTxnDone", err)
	}
	if err := ro.Commit(ctx); !errors.Is(err, ErrTxnDone) {
		t.Fatalf("double commit: %v, want ErrTxnDone", err)
	}
	if err := ro.Abort(ctx); err != nil {
		t.Fatalf("abort after commit: %v, want nil", err)
	}

	m2, err := NewManager(Options{}, plainStore{})
	if err != nil {
		t.Fatal(err)
	}
	ro2, _ := m2.BeginReadOnly(ctx)
	defer ro2.Abort(ctx)
	if _, err := ro2.Read(ctx, "", "t", "k"); !errors.Is(err, ErrSnapshotUnsupported) {
		t.Fatalf("snapshot read on plain store: %v, want ErrSnapshotUnsupported", err)
	}
}

// plainStore is a Store with no SnapshotStore capability.
type plainStore struct{ Store }

func (plainStore) Name() string { return "plain" }

// TestReadOnlyTxnPreparedResolution pins the commit-point semantics of
// snapshot reads against in-flight writers: a prepared record's
// transaction counts as committed for a snapshot iff its TSR existed
// at the snapshot timestamp — decided by looking the TSR up in its own
// version history, never by repairing anything.
func TestReadOnlyTxnPreparedResolution(t *testing.T) {
	ctx := context.Background()
	m, inner := newTestManager(t, Options{RecoveryTimeout: time.Hour})
	if err := m.RunInTxn(ctx, 0, func(tx *Txn) error {
		return tx.Insert("", "t", "k", bal(1))
	}); err != nil {
		t.Fatal(err)
	}

	// Install a prepared overwrite exactly as an in-flight writer
	// would: new value 777 with the previous image in metadata.
	cur, _ := inner.Get("t", "k")
	prepared := map[string][]byte{
		"balance":     []byte("777"),
		metaState:     []byte("P"),
		metaID:        []byte("tflight-1"),
		metaCoord:     []byte("local"),
		metaPrepareTS: []byte(strconv.FormatInt(m.opts.Clock.Now(), 10)),
		metaPrev:      encodeImage(cur.Fields),
	}
	if _, err := inner.PutIfVersion("t", "k", prepared, cur.Version); err != nil {
		t.Fatal(err)
	}

	// ro1 pins between prepare and commit point: it must read around
	// to the previous image, now and forever — even after the writer
	// commits.
	ro1, _ := m.BeginReadOnly(ctx)
	defer ro1.Abort(ctx)
	if f, err := ro1.Read(ctx, "", "t", "k"); err != nil || getBal(t, f) != 1 {
		t.Fatalf("pre-commit snapshot read = %v, %v; want 1", f, err)
	}

	// The writer reaches its commit point: the TSR write.
	if _, err := inner.Insert(tsrTable, "tflight-1", map[string][]byte{
		tsrState: []byte(tsrCommitted),
	}); err != nil {
		t.Fatal(err)
	}

	if f, err := ro1.Read(ctx, "", "t", "k"); err != nil || getBal(t, f) != 1 {
		t.Fatalf("snapshot read after commit point = %v, %v; want 1 (commit is after my snapshot)", f, err)
	}
	// The prepared record was not repaired by the snapshot reads.
	if rec, _ := inner.Get("t", "k"); !isPrepared(rec.Fields) {
		t.Fatal("snapshot reader repaired an in-flight prepare")
	}

	// ro2 pins after the commit point: committed-as-of, new image.
	ro2, _ := m.BeginReadOnly(ctx)
	defer ro2.Abort(ctx)
	if f, err := ro2.Read(ctx, "", "t", "k"); err != nil || getBal(t, f) != 777 {
		t.Fatalf("post-commit snapshot read = %v, %v; want 777", f, err)
	}

	// The committer finishes and deletes its TSR; ro2's answer must not
	// change — the deletion is a later tombstone its as-of TSR lookup
	// never sees.
	if err := inner.Delete(tsrTable, "tflight-1"); err != nil {
		t.Fatal(err)
	}
	if f, err := ro2.Read(ctx, "", "t", "k"); err != nil || getBal(t, f) != 777 {
		t.Fatalf("snapshot read after TSR cleanup = %v, %v; want 777", f, err)
	}
}

// TestSnapshotHoldsVacuum is the vacuum-hole regression: with an
// aggressive engine retention window and both vacuums running (the
// engine's version vacuum and the manager's TSR vacuum), a pinned
// snapshot reader must never observe a hole where its version used to
// be. The manager's min-active-ts watermark is what holds the engine's
// reclaim horizon back.
func TestSnapshotHoldsVacuum(t *testing.T) {
	ctx := context.Background()
	inner, err := kvstore.Open(kvstore.Options{Retention: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { inner.Close() })
	m, err := NewManager(Options{RecoveryTimeout: 5 * time.Millisecond}, NewLocalStore("local", inner))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.RunInTxn(ctx, 0, func(tx *Txn) error {
		return tx.Insert("", "t", "k", bal(1))
	}); err != nil {
		t.Fatal(err)
	}

	ro, _ := m.BeginReadOnly(ctx)
	defer ro.Abort(ctx)
	if f, err := ro.Read(ctx, "", "t", "k"); err != nil || getBal(t, f) != 1 {
		t.Fatalf("pinned read = %v, %v; want 1", f, err)
	}

	// Overwrite repeatedly, age everything past retention, and run both
	// vacuums several times.
	for round := 0; round < 3; round++ {
		for i := 0; i < 4; i++ {
			if err := m.RunInTxn(ctx, 0, func(tx *Txn) error {
				return tx.Write("", "t", "k", bal(int64(100+round*10+i)))
			}); err != nil {
				t.Fatal(err)
			}
		}
		time.Sleep(3 * time.Millisecond)
		inner.Vacuum()
		if _, _, err := m.Vacuum(ctx); err != nil {
			t.Fatal(err)
		}
		if f, err := ro.Read(ctx, "", "t", "k"); err != nil || getBal(t, f) != 1 {
			t.Fatalf("round %d: pinned read after vacuum = %v, %v; want 1 (vacuumed hole)", round, f, err)
		}
	}

	// Release; with no active snapshot the floor clears and the old
	// version becomes reclaimable.
	ts := ro.ReadTS("")
	if err := ro.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	time.Sleep(3 * time.Millisecond)
	inner.Vacuum()
	if _, err := inner.GetAsOf("t", "k", ts); !errors.Is(err, kvstore.ErrNotFound) {
		t.Fatalf("post-release engine read at %d: %v, want ErrNotFound (version reclaimed)", ts, err)
	}
}
