package txn

import "testing"

// FuzzDecodeImage checks the prepared-record image decoder never
// panics and accepted inputs re-encode consistently.
func FuzzDecodeImage(f *testing.F) {
	f.Add(encodeImage(map[string][]byte{"a": []byte("1"), "b": []byte("two")}))
	f.Add(encodeImage(map[string][]byte{}))
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0x00, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		img, err := decodeImage(data)
		if err != nil {
			return
		}
		out, err2 := decodeImage(encodeImage(img))
		if err2 != nil {
			t.Fatalf("re-decode failed: %v", err2)
		}
		if len(out) != len(img) {
			t.Fatalf("round trip size mismatch: %d vs %d", len(out), len(img))
		}
		for k, v := range img {
			if string(out[k]) != string(v) {
				t.Fatalf("field %q mismatch", k)
			}
		}
	})
}

// FuzzDecodeWriteSet checks the vacuum write-set decoder never panics.
func FuzzDecodeWriteSet(f *testing.F) {
	f.Add(encodeWriteSet([]wkey{{"s", "t", "k"}}))
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		got := decodeWriteSet(data)
		if got == nil {
			return
		}
		round := decodeWriteSet(encodeWriteSet(got))
		if len(round) != len(got) {
			t.Fatalf("round trip length mismatch")
		}
	})
}
