package txn

import (
	"context"
	"errors"
	"fmt"

	"ycsbt/internal/kvstore"
)

// SnapshotStore is the optional capability a Store exposes when its
// backing engine keeps MVCC version chains: pinning a snapshot
// timestamp and reading as of one. LocalStore implements it over any
// engine with time-travel support; the HTTP remote store implements it
// over the as-of wire protocol. Stores without the capability (e.g.
// the cloudsim simulator) simply don't, and BeginReadOnly reads
// against them fail with ErrSnapshotUnsupported.
type SnapshotStore interface {
	Store
	// Snapshot draws a snapshot timestamp in this store's commit-ts
	// domain and, where the transport allows, pins it against version
	// reclamation until the release func is called. Release must be
	// idempotent; implementations that cannot pin remotely return a
	// no-op release and rely on the store's retention window.
	Snapshot(ctx context.Context) (int64, func(), error)
	// GetAsOf resolves table/key to its newest version with commit ts
	// ≤ ts; keys deleted as of ts are not found.
	GetAsOf(ctx context.Context, table, key string, ts int64) (*kvstore.VersionedRecord, error)
	// ScanAsOf is Scan against the same frozen cut.
	ScanAsOf(ctx context.Context, table, startKey string, count int, ts int64) ([]kvstore.VersionedKV, error)
}

// ErrSnapshotUnsupported reports a snapshot read against a store that
// does not keep version history.
var ErrSnapshotUnsupported = errors.New("txn: store does not support snapshot reads")

// snapPin is one store's pinned snapshot.
type snapPin struct {
	store   SnapshotStore
	ts      int64
	release func()
}

// ReadOnlyTxn is a snapshot transaction: every read resolves against a
// timestamp pinned per store at first touch, so the transaction sees a
// frozen cut of each store no matter how many writers commit
// concurrently — no locks taken, no validation at commit, no prepare
// phase, and writers are never blocked or aborted by it.
//
// Prepared records met under the snapshot are resolved without
// repairing them: the writer's commit point is its TSR write, and the
// TSR table is itself MVCC-versioned, so looking the TSR up as of the
// coordinating store's snapshot ts answers "had this transaction
// committed at my snapshot?" exactly — even after the committer
// deleted the TSR, because the deletion is a later tombstone the as-of
// read does not see. Committed-as-of writes surface their new image;
// everything else reads around via the prepared record's previous-
// image metadata.
//
// Each store's cut is internally exact. Across stores the cuts are
// pinned sequentially, so a distributed transaction whose commit
// point races the pinning sequence may appear committed on one store's
// cut and uncommitted on another's; single-store snapshot reads (and
// multi-store reads that only touch one store) have no such window.
type ReadOnlyTxn struct {
	m    *Manager
	id   string
	done bool

	snaps map[string]*snapPin
}

// BeginReadOnly starts a snapshot transaction. Store snapshots are
// pinned lazily on first read of each store and released by
// Commit/Abort; the manager's min-active-ts watermark (published to
// every vacuum-capable store) keeps the pinned versions reclaimable
// only after release.
func (m *Manager) BeginReadOnly(_ context.Context) (*ReadOnlyTxn, error) {
	return &ReadOnlyTxn{
		m:     m,
		id:    fmt.Sprintf("r%s-%x", m.id, m.seq.Add(1)),
		snaps: make(map[string]*snapPin),
	}, nil
}

// ID returns the transaction id.
func (t *ReadOnlyTxn) ID() string { return t.id }

// ReadTS reports the snapshot timestamp pinned for a store, or 0 when
// the transaction has not read from it yet.
func (t *ReadOnlyTxn) ReadTS(store string) int64 {
	if p, ok := t.snaps[store]; ok {
		return p.ts
	}
	if store == "" && t.m.defalt != "" {
		if p, ok := t.snaps[t.m.defalt]; ok {
			return p.ts
		}
	}
	return 0
}

// pin resolves a store to its SnapshotStore capability and pins its
// snapshot on first touch.
func (t *ReadOnlyTxn) pin(ctx context.Context, store string) (*snapPin, error) {
	s, err := t.m.store(store)
	if err != nil {
		return nil, err
	}
	if p, ok := t.snaps[s.Name()]; ok {
		return p, nil
	}
	ss, ok := s.(SnapshotStore)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrSnapshotUnsupported, s.Name())
	}
	ts, release, err := ss.Snapshot(ctx)
	if err != nil {
		return nil, err
	}
	wmRelease := t.m.acquireSnapshot(ts)
	p := &snapPin{store: ss, ts: ts, release: func() {
		release()
		wmRelease()
	}}
	t.snaps[s.Name()] = p
	return p, nil
}

// Read returns the committed user fields of store/table/key as of this
// transaction's snapshot.
func (t *ReadOnlyTxn) Read(ctx context.Context, store, table, key string) (map[string][]byte, error) {
	if t.done {
		return nil, ErrTxnDone
	}
	p, err := t.pin(ctx, store)
	if err != nil {
		return nil, err
	}
	rec, err := p.store.GetAsOf(ctx, table, key, p.ts)
	if err != nil {
		if errors.Is(err, kvstore.ErrNotFound) {
			return nil, fmt.Errorf("%w: %s/%s/%s as of %d", ErrNotFound, p.store.Name(), table, key, p.ts)
		}
		return nil, err
	}
	fields, err := t.resolveAsOf(ctx, p, table, key, rec)
	if err != nil {
		return nil, err
	}
	if fields == nil {
		return nil, fmt.Errorf("%w: %s/%s/%s as of %d", ErrNotFound, p.store.Name(), table, key, p.ts)
	}
	return fields, nil
}

// Scan returns up to count committed records of store/table from
// startKey as of this transaction's snapshot. A count < 0 scans to the
// end of the table.
func (t *ReadOnlyTxn) Scan(ctx context.Context, store, table, startKey string, count int) ([]ScanKV, error) {
	if t.done {
		return nil, ErrTxnDone
	}
	p, err := t.pin(ctx, store)
	if err != nil {
		return nil, err
	}
	kvs, err := p.store.ScanAsOf(ctx, table, startKey, count, p.ts)
	if err != nil {
		return nil, err
	}
	out := make([]ScanKV, 0, len(kvs))
	for _, kv := range kvs {
		fields, err := t.resolveAsOf(ctx, p, table, kv.Key, kv.Record)
		if err != nil {
			return nil, err
		}
		if fields == nil {
			continue // write of a txn not committed as of the snapshot, no prior image
		}
		out = append(out, ScanKV{Key: kv.Key, Fields: fields})
	}
	return out, nil
}

// resolveAsOf turns a record fetched at the snapshot into its
// committed-as-of user image, or nil when the key did not (visibly)
// exist at the snapshot. It never writes: prepared records are read
// around or through via metadata only.
func (t *ReadOnlyTxn) resolveAsOf(ctx context.Context, p *snapPin, table, key string, rec *kvstore.VersionedRecord) (map[string][]byte, error) {
	if !isPrepared(rec.Fields) {
		return userFields(rec.Fields), nil
	}

	// A prepared image sits at the snapshot. Its transaction committed
	// for this snapshot iff the TSR exists as of the coordinating
	// store's snapshot ts — the commit point, frozen in the TSR table's
	// own version history.
	writerID := string(rec.Fields[metaID])
	coordName := string(rec.Fields[metaCoord])
	isDelete := len(rec.Fields[metaDelete]) > 0
	prevImage := rec.Fields[metaPrev]

	committed := false
	if cp, err := t.pin(ctx, coordName); err == nil {
		if tsr, err := cp.store.GetAsOf(ctx, tsrTable, writerID, cp.ts); err == nil {
			committed = string(tsr.Fields[tsrState]) == tsrCommitted
		}
	}
	// An unknown or snapshot-incapable coordinating store leaves
	// committed = false: the conservative read-around below returns the
	// previous committed image, the same answer a fresh in-flight
	// prepare gets.

	if committed {
		if isDelete {
			return nil, nil
		}
		return userFields(rec.Fields), nil
	}
	if len(prevImage) == 0 {
		return nil, nil // prepared insert, not committed as of the snapshot
	}
	prev, err := decodeImage(prevImage)
	if err != nil {
		return nil, err
	}
	return userFields(prev), nil
}

// Commit finishes the transaction, releasing every pinned snapshot.
// Snapshot transactions cannot conflict; Commit never fails with
// ErrConflict.
func (t *ReadOnlyTxn) Commit(_ context.Context) error {
	if t.done {
		return ErrTxnDone
	}
	t.finish()
	t.m.commits.Add(1)
	return nil
}

// Abort finishes the transaction, releasing every pinned snapshot.
// Aborting a finished transaction is a no-op.
func (t *ReadOnlyTxn) Abort(_ context.Context) error {
	if t.done {
		return nil
	}
	t.finish()
	t.m.aborts.Add(1)
	return nil
}

func (t *ReadOnlyTxn) finish() {
	t.done = true
	for _, p := range t.snaps {
		p.release()
	}
}

// Snapshot implements SnapshotStore over the embedded engine.
func (l *LocalStore) Snapshot(_ context.Context) (int64, func(), error) {
	ts, release := l.inner.Pin()
	return ts, release, nil
}

// GetAsOf implements SnapshotStore.
func (l *LocalStore) GetAsOf(_ context.Context, table, key string, ts int64) (*kvstore.VersionedRecord, error) {
	return l.inner.GetAsOf(table, key, ts)
}

// ScanAsOf implements SnapshotStore.
func (l *LocalStore) ScanAsOf(_ context.Context, table, startKey string, count int, ts int64) ([]kvstore.VersionedKV, error) {
	return l.inner.ScanAsOf(table, startKey, count, ts)
}

var _ SnapshotStore = (*LocalStore)(nil)

// vacuumFloorStore is implemented by stores that can defer version
// reclamation below an externally supplied min-active-ts watermark
// (LocalStore forwards to engines that support it).
type vacuumFloorStore interface {
	SetVacuumFloor(ts int64)
}

// SetVacuumFloor forwards the watermark to the embedded engine when it
// supports one; other engines rely on their retention window.
func (l *LocalStore) SetVacuumFloor(ts int64) {
	if f, ok := l.inner.(interface{ SetVacuumFloor(int64) }); ok {
		f.SetVacuumFloor(ts)
	}
}

// acquireSnapshot registers a live snapshot ts with the manager's
// watermark and republishes the min-active floor to every
// vacuum-capable store; the returned release undoes both.
func (m *Manager) acquireSnapshot(ts int64) func() {
	release := m.watermark.Acquire(ts)
	m.publishWatermark()
	return func() {
		release()
		m.publishWatermark()
	}
}

// publishWatermark pushes the current min-active snapshot ts to every
// store that can hold its vacuum below it. No active snapshot clears
// the floor (stores fall back to their retention window). Commit
// timestamps are drawn per store, but all clock domains are bumped
// UnixNano, so the min across stores is a conservative shared floor.
func (m *Manager) publishWatermark() {
	min := m.watermark.Min()
	for _, s := range m.stores {
		if f, ok := s.(vacuumFloorStore); ok {
			if min == noActiveSnapshot {
				f.SetVacuumFloor(0)
			} else {
				f.SetVacuumFloor(min)
			}
		}
	}
}

// MinActiveSnapshot reports the oldest snapshot ts pinned by a live
// read-only transaction, or noActiveSnapshot (MaxInt64) when none is.
func (m *Manager) MinActiveSnapshot() int64 { return m.watermark.Min() }
