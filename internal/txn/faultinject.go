package txn

import (
	"fmt"
	"strconv"
	"time"

	"ycsbt/internal/kvstore"
)

// Fault-injection helpers: fabricate the on-store state a crashed
// writer leaves behind, so tests, examples and failure-injection
// suites can exercise the recovery paths without actually killing a
// process mid-commit.

// InstallPreparedForTest overwrites table/key on store with a
// prepared image exactly as a writer that crashed mid-commit would
// leave it: newFields as the pending value, the given current record
// as the encoded previous image, and txnID/coord in the metadata.
func InstallPreparedForTest(store *kvstore.Store, table, key string, cur *kvstore.VersionedRecord, newFields map[string][]byte, txnID, coord string) error {
	prepared := make(map[string][]byte, len(newFields)+5)
	for f, v := range newFields {
		if isMetaField(f) {
			return fmt.Errorf("txn: reserved field %q in prepared image", f)
		}
		prepared[f] = v
	}
	prepared[metaState] = []byte("P")
	prepared[metaID] = []byte(txnID)
	prepared[metaCoord] = []byte(coord)
	prepared[metaPrepareTS] = []byte(strconv.FormatInt(time.Now().UnixNano(), 10))
	prepared[metaPrev] = encodeImage(cur.Fields)
	_, err := store.PutIfVersion(table, key, prepared, cur.Version)
	return err
}

// InstallCommittedTSRForTest writes a committed transaction status
// record for txnID, marking a fabricated crash as having passed its
// commit point (readers must roll the prepared records forward).
func InstallCommittedTSRForTest(store *kvstore.Store, txnID string) error {
	_, err := store.Insert(tsrTable, txnID, map[string][]byte{
		tsrState:    []byte(tsrCommitted),
		tsrCommitTS: []byte(strconv.FormatInt(time.Now().UnixNano(), 10)),
	})
	return err
}

// InstallAbortedTSRForTest writes an aborted transaction status
// record for txnID (readers must roll the prepared records back).
func InstallAbortedTSRForTest(store *kvstore.Store, txnID string) error {
	_, err := store.Insert(tsrTable, txnID, map[string][]byte{
		tsrState: []byte(tsrAborted),
	})
	return err
}
