package txn

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"time"

	"ycsbt/internal/cloudsim"
	"ycsbt/internal/db"
	"ycsbt/internal/history"
	"ycsbt/internal/httpkv"
	"ycsbt/internal/kvstore"
	"ycsbt/internal/obs"
	"ycsbt/internal/properties"
)

// Binding exposes the transaction library as the "txnkv" YCSB+T
// binding: a db.TransactionalDB whose Start/Commit/Abort demarcate
// real client-coordinated transactions and whose data operations,
// when routed through WithTx, execute inside them.
//
// With multiple stores, records are partitioned across stores by key
// hash, so ordinary workloads exercise cross-store transactions.
// Operations invoked outside a transaction run as single-operation
// auto-commit transactions.
type Binding struct {
	m      *Manager
	names  []string // sorted store names for partitioning
	closer func() error
}

// NewBinding wraps an existing manager.
func NewBinding(m *Manager) *Binding {
	b := &Binding{m: m}
	for n := range m.stores {
		b.names = append(b.names, n)
	}
	sort.Strings(b.names)
	return b
}

func init() {
	db.Register("txnkv", func() (db.DB, error) { return &Binding{}, nil })
}

// Init builds the manager from properties when the binding was opened
// by name: "txnkv.backend" is one of "memory" (default), "was",
// "gcs", "was+gcs" (two simulated containers, keys partitioned), or
// "cluster" (client-coordinated transactions over a multi-node
// kvserver fleet routed by the shard map; requires "cluster.nodes");
// "txnkv.serializable" upgrades read validation.
func (b *Binding) Init(p *properties.Properties) error {
	if b.m != nil {
		return nil
	}
	opts := Options{
		SerializableReads: p.GetBool("txnkv.serializable", false),
		RecoveryTimeout:   time.Duration(p.GetInt64("txnkv.recovery_ms", 10000)) * time.Millisecond,
	}
	var stores []Store
	var closers []func() error
	add := func(s Store, c func() error) {
		stores = append(stores, s)
		closers = append(closers, c)
	}
	reg := obs.Enabled(p.GetBool("obs.enabled", false))
	sim := func(cfg cloudsim.Config) *cloudsim.Store {
		cfg.Metrics = reg
		return cloudsim.New(cfg)
	}
	switch backend := p.GetString("txnkv.backend", "memory"); backend {
	case "memory":
		inner, err := kvstore.Open(kvstore.Options{
			Shards:  p.GetInt("kvstore.shards", kvstore.DefaultShards),
			Metrics: reg,
		})
		if err != nil {
			return err
		}
		add(NewLocalStore("local", inner), inner.Close)
	case "was":
		s := sim(cloudsim.WASPreset())
		add(s, s.Close)
	case "gcs":
		s := sim(cloudsim.GCSPreset())
		add(s, s.Close)
	case "was+gcs":
		w := sim(cloudsim.WASPreset())
		g := sim(cloudsim.GCSPreset())
		add(w, w.Close)
		add(g, g.Close)
	case "cluster":
		seeds := httpkv.SplitNodes(p.GetString("cluster.nodes", ""))
		if len(seeds) == 0 {
			return errors.New("txnkv: cluster backend requires cluster.nodes")
		}
		router, err := httpkv.NewRouter(seeds, nil, reg)
		if err != nil {
			return fmt.Errorf("txnkv: cluster backend: %w", err)
		}
		add(httpkv.NewRouterStore("cluster", router), router.Cleanup)
	default:
		return fmt.Errorf("txnkv: unknown backend %q", backend)
	}
	m, err := NewManager(opts, stores...)
	if err != nil {
		return err
	}
	b.m = m
	for n := range m.stores {
		b.names = append(b.names, n)
	}
	sort.Strings(b.names)
	b.closer = func() error {
		var first error
		for _, c := range closers {
			if err := c(); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	return nil
}

// Cleanup closes stores the binding created.
func (b *Binding) Cleanup() error {
	if b.closer != nil {
		return b.closer()
	}
	return nil
}

// Manager exposes the underlying transaction manager.
func (b *Binding) Manager() *Manager { return b.m }

// SetHistorySink implements history.CapableDB: the transaction
// manager feeds the sink natively from its commit and abort paths —
// richer than the capture middleware (store-qualified keys, commit
// timestamps drawn at the TSR write, aborted read sets) — so the
// client installs the sink here instead of stacking the middleware.
func (b *Binding) SetHistorySink(sink history.TxnSink) { b.m.SetHistory(sink) }

var _ history.CapableDB = (*Binding)(nil)

// storeFor partitions a key across the registered stores.
func (b *Binding) storeFor(key string) string {
	if len(b.names) == 1 {
		return b.names[0]
	}
	h := fnv.New32a()
	h.Write([]byte(key))
	return b.names[int(h.Sum32())%len(b.names)]
}

// translateErr maps txn errors onto db sentinels.
func translateErr(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, ErrNotFound):
		return fmt.Errorf("%w: %v", db.ErrNotFound, err)
	case errors.Is(err, ErrConflict):
		return fmt.Errorf("%w: %v", db.ErrAborted, err)
	default:
		return err
	}
}

// Start implements db.TransactionalDB.
func (b *Binding) Start(ctx context.Context) (*db.TransactionContext, error) {
	t, err := b.m.Begin(ctx)
	if err != nil {
		return nil, err
	}
	return &db.TransactionContext{Handle: t}, nil
}

// Commit implements db.TransactionalDB.
func (b *Binding) Commit(ctx context.Context, tctx *db.TransactionContext) error {
	t, err := b.txnOf(tctx)
	if err != nil {
		return err
	}
	return translateErr(t.Commit(ctx))
}

// Abort implements db.TransactionalDB.
func (b *Binding) Abort(ctx context.Context, tctx *db.TransactionContext) error {
	t, err := b.txnOf(tctx)
	if err != nil {
		return err
	}
	return t.Abort(ctx)
}

func (b *Binding) txnOf(tctx *db.TransactionContext) (*Txn, error) {
	if tctx == nil {
		return nil, errors.New("txnkv: nil transaction context")
	}
	t, ok := tctx.Handle.(*Txn)
	if !ok {
		return nil, fmt.Errorf("txnkv: foreign transaction context %T", tctx.Handle)
	}
	return t, nil
}

// WithTx implements db.ContextualDB: the returned view executes its
// operations inside the given transaction.
func (b *Binding) WithTx(tctx *db.TransactionContext) db.DB {
	t, err := b.txnOf(tctx)
	if err != nil {
		return b // defensive: fall back to auto-commit semantics
	}
	return &txView{b: b, t: t}
}

// Auto-commit single-operation paths (used when the harness is run in
// non-transactional mode against this binding).

func (b *Binding) autoCommit(ctx context.Context, fn func(*Txn) error) error {
	return translateErr(b.m.RunInTxn(ctx, 3, fn))
}

// Read implements db.DB (auto-commit).
func (b *Binding) Read(ctx context.Context, table, key string, fields []string) (db.Record, error) {
	var out db.Record
	err := b.autoCommit(ctx, func(t *Txn) error {
		f, err := t.Read(ctx, b.storeFor(key), table, key)
		if err != nil {
			return err
		}
		out = db.ProjectFields(f, fields)
		return nil
	})
	return out, err
}

// Scan implements db.DB (auto-commit). With multiple stores the scan
// only covers the partition holding startKey's neighbours on each
// store; cross-store ordered scans merge all partitions.
func (b *Binding) Scan(ctx context.Context, table, startKey string, count int, fields []string) ([]db.KV, error) {
	var out []db.KV
	err := b.autoCommit(ctx, func(t *Txn) error {
		out = out[:0]
		for _, name := range b.names {
			kvs, err := t.Scan(ctx, name, table, startKey, count)
			if err != nil {
				return err
			}
			for _, kv := range kvs {
				out = append(out, db.KV{Key: kv.Key, Record: db.ProjectFields(kv.Fields, fields)})
			}
		}
		sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
		if count >= 0 && len(out) > count {
			out = out[:count]
		}
		return nil
	})
	return out, err
}

// Update implements db.DB (auto-commit read-merge-write).
func (b *Binding) Update(ctx context.Context, table, key string, values db.Record) error {
	return b.autoCommit(ctx, func(t *Txn) error {
		return txUpdate(ctx, t, b.storeFor(key), table, key, values)
	})
}

// Insert implements db.DB (auto-commit).
func (b *Binding) Insert(ctx context.Context, table, key string, values db.Record) error {
	return b.autoCommit(ctx, func(t *Txn) error {
		return t.Insert(b.storeFor(key), table, key, values)
	})
}

// Delete implements db.DB (auto-commit).
func (b *Binding) Delete(ctx context.Context, table, key string) error {
	return b.autoCommit(ctx, func(t *Txn) error {
		return t.Delete(b.storeFor(key), table, key)
	})
}

// txView is the in-transaction view of the binding.
type txView struct {
	b *Binding
	t *Txn
}

// Init implements db.DB; the view inherits the binding's state.
func (v *txView) Init(*properties.Properties) error { return nil }

// Cleanup implements db.DB; the transaction owns no resources.
func (v *txView) Cleanup() error { return nil }

// Read implements db.DB inside the transaction.
func (v *txView) Read(ctx context.Context, table, key string, fields []string) (db.Record, error) {
	f, err := v.t.Read(ctx, v.b.storeFor(key), table, key)
	if err != nil {
		return nil, translateErr(err)
	}
	return db.ProjectFields(f, fields), nil
}

// Scan implements db.DB inside the transaction.
func (v *txView) Scan(ctx context.Context, table, startKey string, count int, fields []string) ([]db.KV, error) {
	var out []db.KV
	for _, name := range v.b.names {
		kvs, err := v.t.Scan(ctx, name, table, startKey, count)
		if err != nil {
			return nil, translateErr(err)
		}
		for _, kv := range kvs {
			out = append(out, db.KV{Key: kv.Key, Record: db.ProjectFields(kv.Fields, fields)})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	if count >= 0 && len(out) > count {
		out = out[:count]
	}
	return out, nil
}

// Update implements db.DB inside the transaction (read-merge-write;
// the read version is validated at commit by the conditional
// prepare, so concurrent updates conflict rather than lose updates).
func (v *txView) Update(ctx context.Context, table, key string, values db.Record) error {
	return translateErr(txUpdate(ctx, v.t, v.b.storeFor(key), table, key, values))
}

// Insert implements db.DB inside the transaction.
func (v *txView) Insert(ctx context.Context, table, key string, values db.Record) error {
	return translateErr(v.t.Insert(v.b.storeFor(key), table, key, values))
}

// Delete implements db.DB inside the transaction.
func (v *txView) Delete(ctx context.Context, table, key string) error {
	return translateErr(v.t.Delete(v.b.storeFor(key), table, key))
}

// txUpdate merges values over the current committed image inside t.
func txUpdate(ctx context.Context, t *Txn, store, table, key string, values db.Record) error {
	cur, err := t.Read(ctx, store, table, key)
	if err != nil {
		return err
	}
	merged := make(map[string][]byte, len(cur)+len(values))
	for f, val := range cur {
		merged[f] = val
	}
	for f, val := range values {
		merged[f] = append([]byte(nil), val...)
	}
	return t.Write(store, table, key, merged)
}
