package txn

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"strconv"
	"time"

	"ycsbt/internal/kvstore"
)

// Vacuum is the maintenance sweep for transaction garbage: a
// committer that crashes after its commit point leaves a committed
// TSR and possibly prepared records behind. Readers repair records
// lazily, but keys that are never read again would stay prepared and
// their TSRs would accumulate forever. Vacuum finishes the job
// eagerly: for every TSR older than the recovery timeout it resolves
// each key in the TSR's recorded write set (rolling committed writes
// forward) and then removes the TSR.
//
// It returns how many TSRs were removed and how many records were
// resolved. Safe to run concurrently with live transactions: all
// repairs go through the same conditional-put resolution paths, and
// the cutoff never advances past the oldest snapshot pinned by a live
// read-only transaction — a snapshot reader decides commit-as-of by
// looking the TSR up in its version history, so the TSR (and the
// prepared records it covers) must outlive every snapshot that might
// still consult it.
func (m *Manager) Vacuum(ctx context.Context) (tsrsRemoved, recordsResolved int, err error) {
	cutoff := m.opts.Clock.Now() - int64(m.opts.RecoveryTimeout)
	if wm := m.watermark.Min(); wm < cutoff {
		cutoff = wm
	}
	for _, s := range m.stores {
		kvs, err := s.Scan(ctx, tsrTable, "", -1)
		if err != nil {
			return tsrsRemoved, recordsResolved, fmt.Errorf("txn: vacuum scanning %s: %w", s.Name(), err)
		}
		for _, kv := range kvs {
			commitTS, _ := strconv.ParseInt(string(kv.Record.Fields[tsrCommitTS]), 10, 64)
			if commitTS == 0 || commitTS > cutoff {
				continue // young TSR: its committer may still be rolling forward
			}
			for _, wk := range decodeWriteSet(kv.Record.Fields[tsrWriteSet]) {
				ws, err := m.store(wk.store)
				if err != nil {
					continue // store no longer registered
				}
				if _, _, rerr := m.readResolved(ctx, ws, wk.table, wk.key); rerr == nil || errors.Is(rerr, ErrNotFound) {
					recordsResolved++
				}
			}
			if derr := s.Delete(ctx, tsrTable, kv.Key, kvstore.AnyVersion); derr == nil {
				tsrsRemoved++
			}
		}
	}
	return tsrsRemoved, recordsResolved, nil
}

// VacuumLoop runs Vacuum on the given interval until the context is
// cancelled; errors are delivered to onError (nil ignores them).
func (m *Manager) VacuumLoop(ctx context.Context, interval time.Duration, onError func(error)) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			if _, _, err := m.Vacuum(ctx); err != nil && onError != nil {
				onError(err)
			}
		}
	}
}

// encodeWriteSet serializes the written keys for the TSR.
func encodeWriteSet(keys []wkey) []byte {
	buf := binary.AppendUvarint(nil, uint64(len(keys)))
	for _, k := range keys {
		for _, part := range []string{k.store, k.table, k.key} {
			buf = binary.AppendUvarint(buf, uint64(len(part)))
			buf = append(buf, part...)
		}
	}
	return buf
}

// decodeWriteSet reverses encodeWriteSet; corrupt input yields an
// empty set (vacuum then only removes the TSR).
func decodeWriteSet(buf []byte) []wkey {
	n, w := binary.Uvarint(buf)
	if w <= 0 {
		return nil
	}
	buf = buf[w:]
	out := make([]wkey, 0, n)
	for i := uint64(0); i < n; i++ {
		var parts [3]string
		for j := 0; j < 3; j++ {
			l, w := binary.Uvarint(buf)
			if w <= 0 || uint64(len(buf)-w) < l {
				return nil
			}
			parts[j] = string(buf[w : w+int(l)])
			buf = buf[w+int(l):]
		}
		out = append(out, wkey{parts[0], parts[1], parts[2]})
	}
	return out
}
