// Package txn implements client-coordinated multi-item transactions
// over versioned key-value stores — the reproduction's analog of the
// transaction library the YCSB+T paper evaluates ("We have
// implemented a system similar to Percolator and ReTSO... It does not
// depend on any centralized timestamp oracle or logging
// infrastructure", Dey et al. [28], the Cherry Garcia protocol).
//
// Protocol sketch. A transaction buffers writes at the client. Commit
// proceeds in phases, all executed by the client against the stores
// themselves — there is no central coordinator:
//
//  1. PREPARE: the write set is sorted globally (store, table, key) —
//     the paper's "simple ordered locking protocol" that makes
//     deadlock impossible — and each record is replaced via
//     conditional put (test-and-set on the version the transaction
//     read) with a prepared image that carries the new value, the
//     transaction id, the coordinating store, a prepare timestamp,
//     and the encoded previous committed image. A version mismatch
//     means a concurrent writer won; the transaction rolls back its
//     prepares and aborts.
//  2. COMMIT POINT: a transaction status record (TSR) is written to
//     the coordinating store (create-only). Once the TSR exists the
//     transaction is durably committed.
//  3. ROLL FORWARD: each prepared record is rewritten as a clean
//     committed image (conditional on the prepared version); deletes
//     are applied. Then the TSR is removed.
//
// Readers that encounter a prepared record resolve it: if the
// writer's TSR exists the new image is committed (the reader may
// opportunistically roll the record forward); otherwise the reader
// returns the previous image (read-around), and if the prepare is
// older than the recovery timeout the reader rolls the record back,
// recovering from a crashed writer. Committers enforce a commit
// deadline well under the recovery timeout so a live writer is never
// rolled back by an impatient reader.
//
// Records need no gateway or daemon: transaction state lives in
// reserved "_txn:" fields of the records themselves and in the "_tsr"
// table, so the library works across heterogeneous stores — anything
// that offers a versioned conditional put.
package txn

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"sync/atomic"
	"time"

	"ycsbt/internal/db"
	"ycsbt/internal/history"
	"ycsbt/internal/kvstore"
	"ycsbt/internal/oracle"
)

// Store is what the transaction library needs from a data store: get
// and scan with versions, and conditional put/delete (test-and-set on
// the record version). kvstore (via LocalStore), cloudsim.Store and
// the HTTP client adapter all satisfy it.
type Store interface {
	// Name identifies the store in multi-store transactions.
	Name() string
	// Get returns the record and its version.
	Get(ctx context.Context, table, key string) (*kvstore.VersionedRecord, error)
	// Put stores fields when the current version matches expect
	// (kvstore.AnyVersion / kvstore.MustNotExist / exact) and returns
	// the new version.
	Put(ctx context.Context, table, key string, fields map[string][]byte, expect uint64) (uint64, error)
	// Delete removes the record when the version matches expect.
	Delete(ctx context.Context, table, key string, expect uint64) error
	// Scan returns up to count records from startKey in key order.
	Scan(ctx context.Context, table, startKey string, count int) ([]kvstore.VersionedKV, error)
}

// Sentinel errors.
var (
	// ErrConflict reports that the transaction lost a race and was
	// rolled back; the caller may retry.
	ErrConflict = errors.New("txn: conflict, transaction aborted")
	// ErrNotFound reports a missing record.
	ErrNotFound = errors.New("txn: key not found")
	// ErrTxnDone reports use of a finished transaction.
	ErrTxnDone = errors.New("txn: transaction already committed or aborted")
	// ErrUnknownStore reports a reference to an unregistered store.
	ErrUnknownStore = errors.New("txn: unknown store")
)

// Reserved metadata field names stored inside prepared records.
const (
	metaState     = "_txn:state" // "P" while prepared; absent when clean
	metaID        = "_txn:id"
	metaCoord     = "_txn:coord"
	metaPrepareTS = "_txn:prepare_ts"
	metaPrev      = "_txn:prev" // encoded previous committed image
	metaDelete    = "_txn:del"  // present when the write is a delete
)

// tsrTable is the reserved table holding transaction status records.
const tsrTable = "_tsr"

// TSR field names and states.
const (
	tsrState     = "state"
	tsrCommitTS  = "commit_ts"
	tsrWriteSet  = "write_set" // encoded list of written keys, for Vacuum
	tsrCommitted = "committed"
	tsrAborted   = "aborted"
)

// Options tunes a Manager.
type Options struct {
	// RecoveryTimeout is how old a prepared record must be before a
	// reader may roll it back, presuming its writer dead. The
	// committer enforces CommitDeadline (RecoveryTimeout/2) between
	// first prepare and TSR write, so live writers are never rolled
	// back. Default 10s.
	RecoveryTimeout time.Duration
	// SerializableReads makes read-write transactions fully
	// serializable by materializing their reads: at commit time every
	// key read but not written joins the write set as a no-op write,
	// so its prepare lock (a conditional put on the version read)
	// both validates the read and blocks concurrent writers through
	// the commit point. Off by default, matching the paper's
	// snapshot-isolation semantics. Read-only transactions still
	// commit trivially: each of their reads individually returned a
	// committed image, and they take no locks.
	SerializableReads bool
	// DisableOrderedPrepare skips sorting the write set before the
	// prepare phase (ablation: the paper's "simple ordered locking
	// protocol"). Correctness is unaffected — prepares are
	// conditional puts, not blocking locks — but contended
	// transactions that prepare in conflicting orders abort each
	// other more often.
	DisableOrderedPrepare bool
	// Clock supplies timestamps; nil uses a monotonic wrapper over
	// the local clock ("in the current version, it relies on the
	// local clock" — Section II-B).
	Clock Clock
	// Tracer, when set, receives the read and write sets of every
	// COMMITTED transaction for dependency-graph serializability
	// checking (internal/trace, the Zellag & Kemme approach the paper
	// discusses). Aborted transactions are not traced. Deleted keys
	// leave a tombstone version behind, so a later re-create continues
	// the version sequence and the version-ordered graph stays sound
	// across delete/insert cycles.
	Tracer Tracer
	// History, when set, receives one record per finished transaction
	// — committed or aborted — with the versions read and installed,
	// the session (from db.WithSession on the Begin context), and
	// start/commit timestamps, for offline certification
	// (internal/history, cmd/histcheck). Unlike Tracer it sees aborts
	// too, which the checker needs for dirty-read detection. Install
	// it before the first Begin. Read-only snapshot transactions
	// (BeginReadOnly) are not recorded: they read a fixed as-of
	// timestamp, take no part in the version-ordered graph, and would
	// need their own snapshot-read semantics in the checker.
	History history.TxnSink
}

// Tracer receives committed transactions' access sets.
// trace.Recorder implements it.
type Tracer interface {
	// Read records that txn observed version of key.
	Read(txn, key string, version uint64)
	// Write records that txn installed version of key.
	Write(txn, key string, version uint64)
}

func (o Options) withDefaults() Options {
	if o.RecoveryTimeout <= 0 {
		o.RecoveryTimeout = 10 * time.Second
	}
	if o.Clock == nil {
		o.Clock = NewHLC()
	}
	return o
}

// Clock produces strictly increasing timestamps (nanoseconds).
type Clock interface {
	Now() int64
}

// HLC is a hybrid logical clock: physical time, bumped to stay
// strictly monotonic under bursts and small clock steps.
type HLC struct {
	last atomic.Int64
}

// NewHLC returns a monotonic clock over the local wall clock.
func NewHLC() *HLC { return &HLC{} }

// Now returns a strictly increasing nanosecond timestamp.
func (c *HLC) Now() int64 {
	for {
		phys := time.Now().UnixNano()
		last := c.last.Load()
		next := phys
		if next <= last {
			next = last + 1
		}
		if c.last.CompareAndSwap(last, next) {
			return next
		}
	}
}

// noActiveSnapshot is the watermark's "no floor" sentinel.
const noActiveSnapshot = int64(math.MaxInt64)

// Manager coordinates transactions across one or more stores.
type Manager struct {
	opts   Options
	stores map[string]Store
	defalt string // the sole store's name, for single-store shorthand
	seq    atomic.Uint64
	id     string // manager instance id, part of txn ids

	// watermark tracks the snapshot timestamps pinned by live read-only
	// transactions; its min is published to vacuum-capable stores and
	// holds the TSR GC back (see Vacuum), so a snapshot reader can
	// always resolve the prepared records it meets.
	watermark *oracle.Watermark

	// Stats.
	commits   atomic.Int64
	aborts    atomic.Int64
	conflicts atomic.Int64
	recovered atomic.Int64
}

// NewManager returns a manager over the given stores. With exactly
// one store, the empty store name refers to it.
func NewManager(opts Options, stores ...Store) (*Manager, error) {
	if len(stores) == 0 {
		return nil, errors.New("txn: at least one store required")
	}
	m := &Manager{
		opts:      opts.withDefaults(),
		stores:    make(map[string]Store, len(stores)),
		watermark: oracle.NewWatermark(),
	}
	for _, s := range stores {
		if s.Name() == "" {
			return nil, errors.New("txn: store with empty name")
		}
		if _, dup := m.stores[s.Name()]; dup {
			return nil, fmt.Errorf("txn: duplicate store name %q", s.Name())
		}
		m.stores[s.Name()] = s
	}
	if len(stores) == 1 {
		m.defalt = stores[0].Name()
	}
	m.id = strconv.FormatInt(m.opts.Clock.Now()&0xFFFFFFFF, 36)
	return m, nil
}

// Stats reports commit/abort/conflict/recovery counts.
func (m *Manager) Stats() (commits, aborts, conflicts, recovered int64) {
	return m.commits.Load(), m.aborts.Load(), m.conflicts.Load(), m.recovered.Load()
}

// store resolves a store name ("" = the sole store).
func (m *Manager) store(name string) (Store, error) {
	if name == "" {
		if m.defalt == "" {
			return nil, fmt.Errorf("%w: empty name with multiple stores", ErrUnknownStore)
		}
		name = m.defalt
	}
	s, ok := m.stores[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownStore, name)
	}
	return s, nil
}

// Begin starts a transaction. When the context carries a session id
// (db.WithSession) it is recorded into the transaction's history
// record.
func (m *Manager) Begin(ctx context.Context) (*Txn, error) {
	startTS := m.opts.Clock.Now()
	return &Txn{
		m:       m,
		id:      fmt.Sprintf("t%s-%x-%x", m.id, startTS, m.seq.Add(1)),
		startTS: startTS,
		session: db.SessionFromContext(ctx),
		reads:   make(map[wkey]uint64),
		writes:  make(map[wkey]*pendingWrite),
	}, nil
}

// SetHistory installs (or clears) the history sink. Call it before
// the first Begin; transactions read it at finish time.
func (m *Manager) SetHistory(sink history.TxnSink) { m.opts.History = sink }

// RunInTxn executes fn inside a transaction, committing on success
// and retrying (up to maxRetries) when the commit conflicts. fn must
// be idempotent.
func (m *Manager) RunInTxn(ctx context.Context, maxRetries int, fn func(*Txn) error) error {
	var lastErr error
	for attempt := 0; attempt <= maxRetries; attempt++ {
		t, err := m.Begin(ctx)
		if err != nil {
			return err
		}
		if err := fn(t); err != nil {
			t.Abort(ctx)
			if errors.Is(err, ErrConflict) {
				lastErr = err
				continue
			}
			return err
		}
		err = t.Commit(ctx)
		if err == nil {
			return nil
		}
		if !errors.Is(err, ErrConflict) {
			return err
		}
		lastErr = err
	}
	return fmt.Errorf("txn: retries exhausted: %w", lastErr)
}

// wkey identifies one record across stores.
type wkey struct {
	store, table, key string
}

func (k wkey) String() string { return k.store + "/" + k.table + "/" + k.key }

// writeKind enumerates buffered-write types.
type writeKind uint8

const (
	kindPut writeKind = iota + 1
	kindInsert
	kindDelete
	// kindReadLock is a materialized read: the record is re-written
	// with its current committed image, so the prepare conditional
	// put validates the read version and excludes concurrent writers
	// until the transaction finishes (SerializableReads mode).
	kindReadLock
)

// pendingWrite is one buffered write.
type pendingWrite struct {
	kind   writeKind
	fields map[string][]byte

	// Set during prepare:
	prepared    bool
	preparedVer uint64
	prevImage   []byte // encoded previous committed image ("" for insert)
	prevExisted bool
}

// Txn is one client-coordinated transaction. A Txn is confined to a
// single goroutine.
type Txn struct {
	m       *Manager
	id      string
	startTS int64
	session int
	done    bool

	reads  map[wkey]uint64 // version observed for each read key
	writes map[wkey]*pendingWrite
}

// ID returns the transaction id.
func (t *Txn) ID() string { return t.id }

// Read returns the committed user fields of store/table/key, seeing
// the transaction's own buffered writes first.
func (t *Txn) Read(ctx context.Context, store, table, key string) (map[string][]byte, error) {
	if t.done {
		return nil, ErrTxnDone
	}
	s, err := t.m.store(store)
	if err != nil {
		return nil, err
	}
	k := wkey{s.Name(), table, key}
	if w, ok := t.writes[k]; ok {
		if w.kind == kindDelete {
			return nil, fmt.Errorf("%w: %s (deleted in this transaction)", ErrNotFound, k)
		}
		return cloneFields(w.fields), nil
	}
	fields, ver, err := t.m.readResolved(ctx, s, table, key)
	if err != nil {
		return nil, err
	}
	if err := t.noteRead(k, ver); err != nil {
		return nil, err
	}
	return fields, nil
}

// noteRead records the version observed for a key and enforces
// repeatable reads: seeing a different version than an earlier read
// in the same transaction means a concurrent commit slid underneath
// us, and any derived write would be based on stale data — conflict
// now rather than silently losing an update at prepare time.
func (t *Txn) noteRead(k wkey, ver uint64) error {
	if prev, ok := t.reads[k]; ok && prev != ver {
		return fmt.Errorf("%w: %s read at v%d then v%d", ErrConflict, k, prev, ver)
	}
	t.reads[k] = ver
	return nil
}

// Write buffers a full-record put.
func (t *Txn) Write(store, table, key string, fields map[string][]byte) error {
	return t.buffer(store, table, key, kindPut, fields)
}

// Insert buffers a create-only put; commit fails with ErrConflict if
// the key exists by then.
func (t *Txn) Insert(store, table, key string, fields map[string][]byte) error {
	return t.buffer(store, table, key, kindInsert, fields)
}

// Delete buffers a delete.
func (t *Txn) Delete(store, table, key string) error {
	return t.buffer(store, table, key, kindDelete, nil)
}

func (t *Txn) buffer(store, table, key string, kind writeKind, fields map[string][]byte) error {
	if t.done {
		return ErrTxnDone
	}
	s, err := t.m.store(store)
	if err != nil {
		return err
	}
	for f := range fields {
		if isMetaField(f) {
			return fmt.Errorf("txn: field name %q is reserved", f)
		}
	}
	t.writes[wkey{s.Name(), table, key}] = &pendingWrite{kind: kind, fields: cloneFields(fields)}
	return nil
}

// Scan returns up to count committed records of store/table from
// startKey, resolving prepared records and overlaying this
// transaction's buffered writes.
func (t *Txn) Scan(ctx context.Context, store, table, startKey string, count int) ([]ScanKV, error) {
	if t.done {
		return nil, ErrTxnDone
	}
	s, err := t.m.store(store)
	if err != nil {
		return nil, err
	}
	kvs, err := s.Scan(ctx, table, startKey, count)
	if err != nil {
		return nil, err
	}
	// Resolve store records.
	resolved := make([]ScanKV, 0, len(kvs))
	for _, kv := range kvs {
		k := wkey{s.Name(), table, kv.Key}
		if w, ok := t.writes[k]; ok {
			if w.kind != kindDelete {
				resolved = append(resolved, ScanKV{Key: kv.Key, Fields: cloneFields(w.fields)})
			}
			continue
		}
		fields, ver, err := t.m.resolveRecord(ctx, s, table, kv.Key, kv.Record)
		if err != nil {
			if errors.Is(err, ErrNotFound) {
				continue // prepared insert whose txn aborted
			}
			return nil, err
		}
		if err := t.noteRead(k, ver); err != nil {
			return nil, err
		}
		resolved = append(resolved, ScanKV{Key: kv.Key, Fields: fields})
	}
	// Overlay buffered inserts/puts that fall in range but were not
	// returned by the store.
	present := make(map[string]bool, len(resolved))
	for _, kv := range resolved {
		present[kv.Key] = true
	}
	for k, w := range t.writes {
		if k.store != s.Name() || k.table != table || w.kind == kindDelete {
			continue
		}
		if k.key >= startKey && !present[k.key] {
			resolved = append(resolved, ScanKV{Key: k.key, Fields: cloneFields(w.fields)})
		}
	}
	sort.Slice(resolved, func(i, j int) bool { return resolved[i].Key < resolved[j].Key })
	if count >= 0 && len(resolved) > count {
		resolved = resolved[:count]
	}
	return resolved, nil
}

// ScanKV is one scan result: key and committed user fields.
type ScanKV struct {
	Key    string
	Fields map[string][]byte
}

// Abort rolls back any prepared records and finishes the transaction.
// Aborting a finished transaction is a no-op.
func (t *Txn) Abort(ctx context.Context) error {
	if t.done {
		return nil
	}
	t.done = true
	t.m.aborts.Add(1)
	t.emitHistory(false, 0)
	return t.rollbackPrepared(ctx)
}

func (t *Txn) rollbackPrepared(ctx context.Context) error {
	var firstErr error
	for k, w := range t.writes {
		if !w.prepared {
			continue
		}
		s, err := t.m.store(k.store)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if err := t.m.rollbackRecord(ctx, s, k.table, k.key, w.preparedVer, w.prevImage, w.prevExisted); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Commit runs the prepare / TSR / roll-forward protocol. On conflict
// it rolls back and returns ErrConflict; the transaction is finished
// either way.
func (t *Txn) Commit(ctx context.Context) error {
	if t.done {
		return ErrTxnDone
	}
	if len(t.writes) == 0 {
		// Read-only transactions commit trivially: every read already
		// returned a committed image. No TSR is written, so the
		// history commit timestamp is drawn here — any timestamp at
		// or after the last read is a valid serialization point.
		t.done = true
		t.m.commits.Add(1)
		t.emitTrace()
		t.emitHistory(true, t.m.opts.Clock.Now())
		return nil
	}

	// Serializable mode: materialize the read set so prepare locks
	// cover it atomically through the commit point (validating at
	// commit time and then writing the TSR would leave a window for a
	// concurrent writer to slip in between).
	if t.m.opts.SerializableReads {
		for k := range t.reads {
			if _, written := t.writes[k]; !written {
				t.writes[k] = &pendingWrite{kind: kindReadLock}
			}
		}
	}

	// Deterministic global order — the ordered locking protocol
	// (unless ablated; map iteration order is effectively random).
	keys := make([]wkey, 0, len(t.writes))
	for k := range t.writes {
		keys = append(keys, k)
	}
	if !t.m.opts.DisableOrderedPrepare {
		sort.Slice(keys, func(i, j int) bool {
			a, b := keys[i], keys[j]
			if a.store != b.store {
				return a.store < b.store
			}
			if a.table != b.table {
				return a.table < b.table
			}
			return a.key < b.key
		})
	}

	prepareStart := time.Now()
	prepTS := t.m.opts.Clock.Now()

	// Failure-path rollbacks run on a detached context: cleanup must
	// complete even when the caller's context caused the failure.
	cleanupCtx := context.WithoutCancel(ctx)

	// Phase 1: prepare every write in order.
	for _, k := range keys {
		if err := t.prepareOne(ctx, k, prepTS); err != nil {
			t.done = true
			t.m.conflicts.Add(1)
			t.m.aborts.Add(1)
			t.emitHistory(false, 0)
			t.rollbackPrepared(cleanupCtx)
			return fmt.Errorf("%w: preparing %s: %v", ErrConflict, k, err)
		}
	}

	// Enforce the commit deadline so readers' crash recovery can
	// never roll back a live committer.
	if time.Since(prepareStart) > t.m.opts.RecoveryTimeout/2 {
		t.done = true
		t.m.aborts.Add(1)
		t.emitHistory(false, 0)
		t.rollbackPrepared(cleanupCtx)
		return fmt.Errorf("%w: commit deadline exceeded", ErrConflict)
	}

	// Phase 2: the commit point — write the TSR to the coordinating
	// store (the store of the first write in the global order).
	coordName := keys[0].store
	coord := t.m.stores[coordName]
	commitTS := t.m.opts.Clock.Now()
	tsrFields := map[string][]byte{
		tsrState:    []byte(tsrCommitted),
		tsrCommitTS: []byte(strconv.FormatInt(commitTS, 10)),
		tsrWriteSet: encodeWriteSet(keys),
	}
	if _, err := coord.Put(ctx, tsrTable, t.id, tsrFields, kvstore.MustNotExist); err != nil {
		t.done = true
		t.m.aborts.Add(1)
		t.emitHistory(false, 0)
		t.rollbackPrepared(cleanupCtx)
		return fmt.Errorf("%w: writing TSR: %v", ErrConflict, err)
	}

	// Phase 3: roll forward and clean up on a detached context (the
	// transaction is already durably committed; finish the job even
	// if the caller's deadline fires). Failures here are benign —
	// readers can finish the roll-forward from the TSR.
	for _, k := range keys {
		w := t.writes[k]
		s := t.m.stores[k.store]
		t.m.rollForwardRecord(cleanupCtx, s, k.table, k.key, w)
	}
	coord.Delete(cleanupCtx, tsrTable, t.id, kvstore.AnyVersion)

	t.done = true
	t.m.commits.Add(1)
	t.emitTrace()
	t.emitHistory(true, commitTS)
	return nil
}

// emitTrace reports this committed transaction's access sets to the
// configured tracer. The installed version of each write is the
// roll-forward version, preparedVer+1 (versions advance by exactly
// one per successful conditional put, and the roll-forward — whether
// performed by this committer or by a racing reader — always CASes
// on preparedVer).
func (t *Txn) emitTrace() {
	tr := t.m.opts.Tracer
	if tr == nil {
		return
	}
	for k, ver := range t.reads {
		if _, written := t.writes[k]; written {
			continue
		}
		tr.Read(t.id, k.String(), ver)
	}
	for k, w := range t.writes {
		if w.prepared {
			tr.Write(t.id, k.String(), w.preparedVer+1)
		}
	}
}

// emitHistory reports this finished transaction to the history sink.
// Unlike emitTrace it fires for aborts too (the checker needs them
// for dirty-read analysis) and includes reads of keys the transaction
// also wrote. Aborted transactions report only their reads: their
// prepared images were rolled back, so no version was durably
// installed. Installed versions follow emitTrace's reasoning:
// preparedVer+1, the roll-forward version. Read-around reads report
// the in-flight prepared record's version (see resolveRecord): the
// checker then sees no committed writer for that version — losing a
// WR edge, never inventing a cycle — while the RW anti-dependency to
// the in-flight writer's install lands correctly.
func (t *Txn) emitHistory(committed bool, commitTS int64) {
	sink := t.m.opts.History
	if sink == nil {
		return
	}
	rec := &history.TxnRecord{
		ID:      t.id,
		Session: t.session,
		StartTS: t.startTS,
		Outcome: history.OutcomeAbort,
	}
	if committed {
		rec.Outcome = history.OutcomeCommit
		rec.CommitTS = commitTS
	}
	rec.Ops = make([]history.Op, 0, len(t.reads)+len(t.writes))
	for k, ver := range t.reads {
		rec.Ops = append(rec.Ops, history.Op{Kind: history.OpRead, Store: k.store, Table: k.table, Key: k.key, Ver: ver})
	}
	if committed {
		for k, w := range t.writes {
			if !w.prepared {
				continue
			}
			kind := history.OpWrite
			if w.kind == kindDelete {
				kind = history.OpDelete
			}
			rec.Ops = append(rec.Ops, history.Op{Kind: kind, Store: k.store, Table: k.table, Key: k.key, Ver: w.preparedVer + 1})
		}
	}
	if len(rec.Ops) > 0 {
		sink.RecordTxn(rec)
	}
}

// prepareOne installs the prepared image for one write.
func (t *Txn) prepareOne(ctx context.Context, k wkey, prepTS int64) error {
	w := t.writes[k]
	s := t.m.stores[k.store]

	// Determine the expected version: what we read in this
	// transaction, or the current committed version fetched now.
	expect, haveExpect := t.reads[k]
	var prevImage []byte
	var prevExisted bool
	cur, err := s.Get(ctx, k.table, k.key)
	switch {
	case err == nil:
		if isPrepared(cur.Fields) {
			// Another transaction holds this record; try to resolve
			// it (it may be long-committed or long-dead).
			if _, _, rerr := t.m.resolveRecord(ctx, s, k.table, k.key, cur); rerr != nil && !errors.Is(rerr, ErrNotFound) {
				return fmt.Errorf("record held by %s", cur.Fields[metaID])
			}
			cur, err = s.Get(ctx, k.table, k.key)
			if err != nil && !errors.Is(err, kvstore.ErrNotFound) {
				return err
			}
			if cur != nil && isPrepared(cur.Fields) {
				return fmt.Errorf("record still held by %s", cur.Fields[metaID])
			}
		}
		if cur != nil {
			if haveExpect && cur.Version != expect {
				return fmt.Errorf("version moved %d → %d", expect, cur.Version)
			}
			expect = cur.Version
			prevImage = encodeImage(cur.Fields)
			prevExisted = true
		} else {
			expect = kvstore.MustNotExist
		}
	case errors.Is(err, kvstore.ErrNotFound):
		if haveExpect {
			return fmt.Errorf("record vanished (read version %d)", expect)
		}
		expect = kvstore.MustNotExist
	default:
		return err
	}

	if w.kind == kindInsert && prevExisted {
		return fmt.Errorf("insert of existing key")
	}
	if (w.kind == kindDelete || w.kind == kindReadLock) && !prevExisted {
		return fmt.Errorf("%s of missing key", map[writeKind]string{kindDelete: "delete", kindReadLock: "read-lock"}[w.kind])
	}
	if w.kind == kindReadLock {
		// The materialized read re-writes the image it observed.
		w.fields = userFields(cur.Fields)
	}

	prepared := make(map[string][]byte, len(w.fields)+6)
	for f, v := range w.fields {
		prepared[f] = v
	}
	prepared[metaState] = []byte("P")
	prepared[metaID] = []byte(t.id)
	prepared[metaCoord] = []byte(t.coordName())
	prepared[metaPrepareTS] = []byte(strconv.FormatInt(prepTS, 10))
	prepared[metaPrev] = prevImage
	if w.kind == kindDelete {
		prepared[metaDelete] = []byte("1")
	}

	ver, err := s.Put(ctx, k.table, k.key, prepared, expect)
	if err != nil {
		return err
	}
	w.prepared = true
	w.preparedVer = ver
	w.prevImage = prevImage
	w.prevExisted = prevExisted
	return nil
}

// coordName returns the coordinating store's name: the first write in
// global order.
func (t *Txn) coordName() string {
	var best wkey
	first := true
	for k := range t.writes {
		if first || k.store < best.store || (k.store == best.store && (k.table < best.table || (k.table == best.table && k.key < best.key))) {
			best = k
			first = false
		}
	}
	return best.store
}

func cloneFields(in map[string][]byte) map[string][]byte {
	out := make(map[string][]byte, len(in))
	for f, v := range in {
		out[f] = append([]byte(nil), v...)
	}
	return out
}
