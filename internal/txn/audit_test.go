package txn

import (
	"context"
	"fmt"
	"testing"

	"ycsbt/internal/kvstore"
)

// TestTxnLayerUpholdsImmutability runs full client-coordinated
// transactions (reads, read-modify-writes, deletes, an abort, and a
// validation-style scan) over an audited engine: with clone-on-read
// gone from the engine, the transaction layer must never mutate a
// record it fetched — it builds fresh field maps for every write.
func TestTxnLayerUpholdsImmutability(t *testing.T) {
	ctx := context.Background()
	audit := kvstore.NewAuditEngine(kvstore.OpenMemoryShards(4))
	defer audit.Close()
	m, err := NewManager(Options{}, NewLocalStore("local", audit))
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 16; i++ {
		tx, err := m.Begin(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if err := tx.Write("local", "t", fmt.Sprintf("acct%02d", i), bal(100)); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(ctx); err != nil {
			t.Fatal(err)
		}
	}
	// Read-modify-write transfers: the pre-reads hand out engine-owned
	// records whose balances feed freshly built post-images.
	for i := 0; i < 8; i++ {
		tx, err := m.Begin(ctx)
		if err != nil {
			t.Fatal(err)
		}
		a, b := fmt.Sprintf("acct%02d", i), fmt.Sprintf("acct%02d", 15-i)
		fa, err := tx.Read(ctx, "local", "t", a)
		if err != nil {
			t.Fatal(err)
		}
		fb, err := tx.Read(ctx, "local", "t", b)
		if err != nil {
			t.Fatal(err)
		}
		if err := tx.Write("local", "t", a, bal(getBal(t, fa)-5)); err != nil {
			t.Fatal(err)
		}
		if err := tx.Write("local", "t", b, bal(getBal(t, fb)+5)); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(ctx); err != nil {
			t.Fatal(err)
		}
	}
	// An aborted transaction and a delete both walk the recovery and
	// rollback paths over fetched records.
	tx, err := m.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Read(ctx, "local", "t", "acct00"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Write("local", "t", "acct00", bal(0)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Abort(ctx); err != nil {
		t.Fatal(err)
	}
	tx, err = m.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Delete("local", "t", "acct15"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	// Validation-style full scan.
	kvs, err := audit.Scan("t", "", -1)
	if err != nil {
		t.Fatal(err)
	}
	total := int64(0)
	for _, kv := range kvs {
		total += getBal(t, kv.Record.Fields)
	}
	// 16 accounts of 100, minus deleted acct15 (100 + 5 received).
	if total != 16*100-105 {
		t.Fatalf("balance sum = %d, want 1495", total)
	}

	if err := audit.Verify(); err != nil {
		t.Fatal(err)
	}
	if audit.Handed() == 0 {
		t.Fatal("audit observed no records")
	}
}
