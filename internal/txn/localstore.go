package txn

import (
	"context"

	"ycsbt/internal/kvstore"
)

// LocalStore adapts an embedded kvstore.Engine to the txn.Store
// interface, giving it a name and a context-aware surface. It is the
// zero-latency store used in unit tests and local examples; cloudsim
// provides the latency-faithful equivalent.
//
// Records flowing out of Get/Scan/BatchGet are the engine's shared
// immutable snapshots (see the kvstore.Engine immutability contract);
// the transaction layer builds fresh field maps for everything it
// writes and must never edit a fetched record in place.
type LocalStore struct {
	name  string
	inner kvstore.Engine
}

// NewLocalStore wraps inner under the given name.
func NewLocalStore(name string, inner kvstore.Engine) *LocalStore {
	return &LocalStore{name: name, inner: inner}
}

// Name implements Store.
func (l *LocalStore) Name() string { return l.name }

// Inner returns the wrapped engine.
func (l *LocalStore) Inner() kvstore.Engine { return l.inner }

// Get implements Store.
func (l *LocalStore) Get(_ context.Context, table, key string) (*kvstore.VersionedRecord, error) {
	return l.inner.Get(table, key)
}

// Put implements Store.
func (l *LocalStore) Put(_ context.Context, table, key string, fields map[string][]byte, expect uint64) (uint64, error) {
	return l.inner.PutIfVersion(table, key, fields, expect)
}

// Delete implements Store.
func (l *LocalStore) Delete(_ context.Context, table, key string, expect uint64) error {
	return l.inner.DeleteIfVersion(table, key, expect)
}

// Scan implements Store.
func (l *LocalStore) Scan(_ context.Context, table, startKey string, count int) ([]kvstore.VersionedKV, error) {
	return l.inner.Scan(table, startKey, count)
}

// BatchGet exposes the engine's multi-key read so batched protocol
// paths (the percolator prewrite, the batch bindings) amortize lock
// acquisitions on the zero-latency substrate too.
func (l *LocalStore) BatchGet(_ context.Context, reqs []kvstore.GetReq) ([]kvstore.GetResult, error) {
	return l.inner.BatchGet(reqs), nil
}

// BatchApply exposes the engine's multi-key conditional write.
func (l *LocalStore) BatchApply(_ context.Context, muts []kvstore.Mutation) ([]kvstore.MutResult, error) {
	return l.inner.BatchApply(muts), nil
}
