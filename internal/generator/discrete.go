package generator

import (
	"fmt"
	"math/rand"
)

// Discrete chooses among a fixed set of string-labelled alternatives
// with given weights; YCSB+T uses it as the operation chooser that
// picks read / update / insert / scan / delete / read-modify-write
// according to the workload's proportion parameters.
type Discrete struct {
	values  []string
	weights []float64
	sum     float64
	last    string
}

// NewDiscrete returns an empty discrete chooser; populate it with Add.
func NewDiscrete() *Discrete { return &Discrete{} }

// Add registers value with the given non-negative weight. Zero-weight
// values are accepted and never chosen.
func (d *Discrete) Add(weight float64, value string) {
	if weight < 0 {
		panic(fmt.Sprintf("generator: negative weight %v for %q", weight, value))
	}
	d.values = append(d.values, value)
	d.weights = append(d.weights, weight)
	d.sum += weight
}

// NextString picks the next value according to the registered
// weights. It panics when no positive-weight value is registered.
func (d *Discrete) NextString(r *rand.Rand) string {
	if d.sum <= 0 {
		panic("generator: discrete chooser has no positive-weight values")
	}
	u := r.Float64() * d.sum
	for i, w := range d.weights {
		if w <= 0 {
			continue
		}
		u -= w
		if u < 0 {
			d.last = d.values[i]
			return d.last
		}
	}
	// Floating-point slack: return the final positive-weight value.
	for i := len(d.weights) - 1; i >= 0; i-- {
		if d.weights[i] > 0 {
			d.last = d.values[i]
			return d.last
		}
	}
	panic("generator: unreachable")
}

// LastString returns the most recent choice.
func (d *Discrete) LastString() string { return d.last }

// Clone returns an independent chooser with the same values and
// weights; each benchmark thread clones the workload's chooser so the
// hot path stays lock-free.
func (d *Discrete) Clone() *Discrete {
	return &Discrete{
		values:  append([]string(nil), d.values...),
		weights: append([]float64(nil), d.weights...),
		sum:     d.sum,
	}
}

// Values returns the registered values in insertion order.
func (d *Discrete) Values() []string {
	out := make([]string, len(d.values))
	copy(out, d.values)
	return out
}

// Weight returns the weight registered for value (0 when absent).
func (d *Discrete) Weight(value string) float64 {
	for i, v := range d.values {
		if v == value {
			return d.weights[i]
		}
	}
	return 0
}
