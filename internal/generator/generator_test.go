package generator

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func newRand() *rand.Rand { return rand.New(rand.NewSource(42)) }

func TestConstant(t *testing.T) {
	c := NewConstant(7)
	r := newRand()
	for i := 0; i < 10; i++ {
		if got := c.Next(r); got != 7 {
			t.Fatalf("Next = %d", got)
		}
	}
	if c.Last() != 7 {
		t.Errorf("Last = %d", c.Last())
	}
}

func TestCounterMonotonic(t *testing.T) {
	c := NewCounter(5)
	r := newRand()
	prev := int64(4)
	for i := 0; i < 1000; i++ {
		v := c.Next(r)
		if v != prev+1 {
			t.Fatalf("counter not sequential: %d after %d", v, prev)
		}
		prev = v
	}
	if c.Last() != prev {
		t.Errorf("Last = %d, want %d", c.Last(), prev)
	}
}

func TestCounterConcurrent(t *testing.T) {
	c := NewCounter(0)
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	seen := make([]map[int64]bool, workers)
	for w := 0; w < workers; w++ {
		seen[w] = make(map[int64]bool, per)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < per; i++ {
				seen[w][c.Next(r)] = true
			}
		}(w)
	}
	wg.Wait()
	all := make(map[int64]bool)
	for _, m := range seen {
		for v := range m {
			if all[v] {
				t.Fatalf("duplicate counter value %d", v)
			}
			all[v] = true
		}
	}
	if len(all) != workers*per {
		t.Errorf("got %d distinct values, want %d", len(all), workers*per)
	}
}

func TestAcknowledgedCounter(t *testing.T) {
	a := NewAcknowledgedCounter(0)
	r := newRand()
	v0 := a.Next(r) // 0
	v1 := a.Next(r) // 1
	v2 := a.Next(r) // 2
	if a.Last() != -1 {
		t.Fatalf("Last before any ack = %d, want -1", a.Last())
	}
	a.Acknowledge(v1)
	if a.Last() != -1 {
		t.Fatalf("Last after acking only middle = %d, want -1", a.Last())
	}
	a.Acknowledge(v0)
	if a.Last() != v1 {
		t.Fatalf("Last = %d, want %d (contiguous through v1)", a.Last(), v1)
	}
	a.Acknowledge(v2)
	if a.Last() != v2 {
		t.Fatalf("Last = %d, want %d", a.Last(), v2)
	}
	a.Acknowledge(v0) // duplicate ack must be harmless
	if a.Last() != v2 {
		t.Fatalf("Last after dup ack = %d", a.Last())
	}
}

func TestAcknowledgedCounterConcurrent(t *testing.T) {
	a := NewAcknowledgedCounter(0)
	const workers, per = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < per; i++ {
				a.Acknowledge(a.Next(r))
			}
		}(w)
	}
	wg.Wait()
	if got := a.Last(); got != workers*per-1 {
		t.Errorf("Last = %d, want %d", got, workers*per-1)
	}
}

// Property: the acknowledged counter's limit never exceeds the
// highest acknowledged value.
func TestAcknowledgedCounterLimitQuick(t *testing.T) {
	f := func(ackOrder []uint8) bool {
		a := NewAcknowledgedCounter(0)
		r := newRand()
		n := len(ackOrder)
		if n == 0 {
			return true
		}
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = a.Next(r)
		}
		maxAcked := int64(-1)
		acked := make(map[int64]bool)
		for _, o := range ackOrder {
			v := vals[int(o)%n]
			a.Acknowledge(v)
			acked[v] = true
			if v > maxAcked {
				maxAcked = v
			}
			limit := a.Last()
			if limit > maxAcked {
				return false
			}
			for i := int64(0); i <= limit; i++ {
				if !acked[i] {
					return false // limit covers an unacked value
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestUniformBounds(t *testing.T) {
	u := NewUniform(10, 20)
	r := newRand()
	counts := make(map[int64]int)
	const n = 50000
	for i := 0; i < n; i++ {
		v := u.Next(r)
		if v < 10 || v > 20 {
			t.Fatalf("out of range: %d", v)
		}
		if u.Last() != v {
			t.Fatalf("Last = %d after Next = %d", u.Last(), v)
		}
		counts[v]++
	}
	// Each of the 11 values should get roughly n/11 draws.
	want := float64(n) / 11
	for v := int64(10); v <= 20; v++ {
		got := float64(counts[v])
		if math.Abs(got-want) > want*0.15 {
			t.Errorf("value %d drawn %v times, want ≈%v", v, got, want)
		}
	}
}

func TestUniformPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewUniform(5, 4)
}

func TestZipfianBoundsQuick(t *testing.T) {
	f := func(seed int64, itemsRaw uint16) bool {
		items := int64(itemsRaw%1000) + 1
		z := NewZipfian(0, items)
		r := rand.New(rand.NewSource(seed))
		for i := 0; i < 200; i++ {
			v := z.Next(r)
			if v < 0 || v >= items {
				return false
			}
			if z.Last() != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestZipfianSkew(t *testing.T) {
	z := NewZipfian(0, 1000)
	r := newRand()
	counts := make(map[int64]int)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[z.Next(r)]++
	}
	// Item 0 must be the most popular and markedly more popular than
	// item 100.
	if counts[0] <= counts[100] {
		t.Errorf("no skew: counts[0]=%d counts[100]=%d", counts[0], counts[100])
	}
	// With theta=0.99 over 1000 items, item 0 draws ≈ 1/zetan ≈ 13 %.
	frac := float64(counts[0]) / n
	if frac < 0.08 || frac > 0.20 {
		t.Errorf("item 0 fraction = %v, want ≈0.13", frac)
	}
}

func TestZipfianGrowingItemCount(t *testing.T) {
	z := NewZipfian(0, 100)
	r := newRand()
	for i := 0; i < 100; i++ {
		if v := z.NextCount(r, 200); v < 0 || v >= 200 {
			t.Fatalf("out of range with grown count: %d", v)
		}
	}
	// Shrink back down (delete-heavy) must also stay in range.
	for i := 0; i < 100; i++ {
		if v := z.NextCount(r, 50); v < 0 || v >= 50 {
			t.Fatalf("out of range with shrunk count: %d", v)
		}
	}
}

func TestFNVHash64(t *testing.T) {
	// Non-negative and deterministic.
	vals := []int64{0, 1, -1, 12345, math.MaxInt64, math.MinInt64 + 1}
	for _, v := range vals {
		h1, h2 := FNVHash64(v), FNVHash64(v)
		if h1 != h2 {
			t.Errorf("FNVHash64(%d) not deterministic", v)
		}
		if h1 < 0 {
			t.Errorf("FNVHash64(%d) = %d, want non-negative", v, h1)
		}
	}
	if FNVHash64(1) == FNVHash64(2) {
		t.Error("suspicious collision between 1 and 2")
	}
}

func TestScrambledZipfianBounds(t *testing.T) {
	s := NewScrambledZipfian(100, 199)
	r := newRand()
	seen := make(map[int64]bool)
	for i := 0; i < 20000; i++ {
		v := s.Next(r)
		if v < 100 || v > 199 {
			t.Fatalf("out of range: %d", v)
		}
		if s.Last() != v {
			t.Fatalf("Last mismatch")
		}
		seen[v] = true
	}
	// The scramble should spread popularity across most of the space.
	if len(seen) < 90 {
		t.Errorf("only %d distinct keys seen, want ≥90", len(seen))
	}
}

func TestScrambledZipfianSpreadsHotKeys(t *testing.T) {
	s := NewScrambledZipfian(0, 999)
	r := newRand()
	counts := make(map[int64]int)
	for i := 0; i < 100000; i++ {
		counts[s.Next(r)]++
	}
	// The hottest key should NOT be key 0 systematically — find the
	// top key and check skew exists somewhere.
	var hot int64
	for k, c := range counts {
		if c > counts[hot] {
			hot = k
		}
	}
	if counts[hot] < 2*100000/1000 {
		t.Errorf("no hotspot found: max count %d", counts[hot])
	}
}

func TestSkewedLatest(t *testing.T) {
	basis := NewCounter(0)
	r := newRand()
	for i := 0; i < 100; i++ {
		basis.Next(r) // insert 100 records: keys 0..99
	}
	s := NewSkewedLatest(basis)
	counts := make(map[int64]int)
	for i := 0; i < 50000; i++ {
		v := s.Next(r)
		if v < 0 || v > 99 {
			t.Fatalf("out of range: %d", v)
		}
		counts[v]++
	}
	if counts[99] <= counts[10] {
		t.Errorf("latest key not hottest: counts[99]=%d counts[10]=%d", counts[99], counts[10])
	}
}

func TestSkewedLatestGrowsWithBasis(t *testing.T) {
	basis := NewCounter(0)
	r := newRand()
	basis.Next(r)
	s := NewSkewedLatest(basis)
	s.Next(r)
	for i := 0; i < 500; i++ {
		basis.Next(r)
	}
	sawHigh := false
	for i := 0; i < 2000; i++ {
		if v := s.Next(r); v > 250 {
			sawHigh = true
		} else if v < 0 || v > basis.Last() {
			t.Fatalf("out of range: %d (basis %d)", v, basis.Last())
		}
	}
	if !sawHigh {
		t.Error("skewed-latest never tracked the growing basis")
	}
}

func TestHotspot(t *testing.T) {
	h := NewHotspot(0, 99, 0.2, 0.8)
	r := newRand()
	hot := 0
	const n = 50000
	for i := 0; i < n; i++ {
		v := h.Next(r)
		if v < 0 || v > 99 {
			t.Fatalf("out of range: %d", v)
		}
		if v < 20 {
			hot++
		}
	}
	frac := float64(hot) / n
	if frac < 0.75 || frac > 0.85 {
		t.Errorf("hot fraction = %v, want ≈0.8", frac)
	}
}

func TestHotspotDegenerate(t *testing.T) {
	// All-hot: cold interval is empty, must not panic.
	h := NewHotspot(0, 9, 1.0, 0.5)
	r := newRand()
	for i := 0; i < 1000; i++ {
		if v := h.Next(r); v < 0 || v > 9 {
			t.Fatalf("out of range: %d", v)
		}
	}
	// Out-of-range fractions fall back to defaults.
	h2 := NewHotspot(0, 9, -1, 2)
	for i := 0; i < 1000; i++ {
		if v := h2.Next(r); v < 0 || v > 9 {
			t.Fatalf("out of range with default fractions: %d", v)
		}
	}
}

func TestExponential(t *testing.T) {
	e := NewExponential(95, 0.8571428571, 1000)
	r := newRand()
	within := 0
	const n = 50000
	for i := 0; i < n; i++ {
		v := e.Next(r)
		if v < 0 {
			t.Fatalf("negative draw %d", v)
		}
		if float64(v) < 0.8571428571*1000 {
			within++
		}
	}
	frac := float64(within) / n
	if frac < 0.93 || frac > 0.97 {
		t.Errorf("fraction within range = %v, want ≈0.95", frac)
	}
}

func TestExponentialMean(t *testing.T) {
	e := NewExponentialMean(100)
	r := newRand()
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += float64(e.Next(r))
	}
	mean := sum / n
	if mean < 90 || mean > 110 {
		t.Errorf("sample mean = %v, want ≈100", mean)
	}
}

func TestSequentialWraps(t *testing.T) {
	s := NewSequential(5, 7)
	r := newRand()
	want := []int64{5, 6, 7, 5, 6, 7, 5}
	for i, w := range want {
		if got := s.Next(r); got != w {
			t.Fatalf("draw %d = %d, want %d", i, got, w)
		}
	}
	if s.Last() != 5 {
		t.Errorf("Last = %d", s.Last())
	}
}

func TestDiscreteProportions(t *testing.T) {
	d := NewDiscrete()
	d.Add(0.9, "read")
	d.Add(0.1, "rmw")
	d.Add(0, "never")
	r := newRand()
	counts := map[string]int{}
	const n = 100000
	for i := 0; i < n; i++ {
		v := d.NextString(r)
		if d.LastString() != v {
			t.Fatal("LastString mismatch")
		}
		counts[v]++
	}
	if counts["never"] != 0 {
		t.Errorf("zero-weight value chosen %d times", counts["never"])
	}
	frac := float64(counts["read"]) / n
	if frac < 0.88 || frac > 0.92 {
		t.Errorf("read fraction = %v, want ≈0.9", frac)
	}
}

func TestDiscretePanics(t *testing.T) {
	d := NewDiscrete()
	d.Add(0, "only-zero")
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for all-zero weights")
			}
		}()
		d.NextString(newRand())
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for negative weight")
			}
		}()
		d.Add(-1, "neg")
	}()
}

func TestDiscreteAccessors(t *testing.T) {
	d := NewDiscrete()
	d.Add(0.5, "a")
	d.Add(0.5, "b")
	vals := d.Values()
	if len(vals) != 2 || vals[0] != "a" || vals[1] != "b" {
		t.Errorf("Values = %v", vals)
	}
	if d.Weight("a") != 0.5 || d.Weight("missing") != 0 {
		t.Errorf("Weight wrong: a=%v missing=%v", d.Weight("a"), d.Weight("missing"))
	}
}

func BenchmarkZipfianNext(b *testing.B) {
	z := NewZipfian(0, 10000)
	r := newRand()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		z.Next(r)
	}
}

func BenchmarkScrambledZipfianNext(b *testing.B) {
	s := NewScrambledZipfian(0, 9999)
	r := newRand()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Next(r)
	}
}
