// Package generator provides the random-distribution generators that
// drive YCSB/YCSB+T workloads: which key to operate on, which
// operation to perform, how many records to scan, and so on.
//
// The generators are faithful ports of the YCSB originals
// (com.yahoo.ycsb.generator.*): CounterGenerator,
// AcknowledgedCounterGenerator, UniformIntegerGenerator,
// ZipfianGenerator (Gray et al.'s "Quickly generating billion-record
// synthetic databases" algorithm), ScrambledZipfianGenerator,
// SkewedLatestGenerator, HotspotIntegerGenerator,
// ExponentialGenerator, ConstantIntegerGenerator and
// DiscreteGenerator.
//
// Each generator consumes randomness from a caller-supplied
// *rand.Rand so benchmark threads can own independent, seeded
// streams; the generators themselves hold only distribution state.
// Generators documented as safe for concurrent use say so explicitly;
// all others must be confined to one goroutine (YCSB gives each client
// thread its own generator instances, and so do we).
package generator

import (
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
)

// Integer produces a sequence of int64 values drawn from some
// distribution. Last reports the most recent value returned by Next,
// without advancing the sequence.
type Integer interface {
	Next(r *rand.Rand) int64
	Last() int64
}

// Constant always returns the same value. It is trivially safe for
// concurrent use.
type Constant struct {
	value int64
}

// NewConstant returns a generator that always yields value.
func NewConstant(value int64) *Constant { return &Constant{value: value} }

// Next returns the constant value.
func (c *Constant) Next(*rand.Rand) int64 { return c.value }

// Last returns the constant value.
func (c *Constant) Last() int64 { return c.value }

// Counter returns a strictly increasing sequence starting at a given
// origin. It is safe for concurrent use; YCSB uses it to generate
// fresh record keys during the load phase across many threads.
type Counter struct {
	next atomic.Int64
}

// NewCounter returns a counter whose first Next value is start.
func NewCounter(start int64) *Counter {
	c := &Counter{}
	c.next.Store(start)
	return c
}

// Next returns the next value in the sequence.
func (c *Counter) Next(*rand.Rand) int64 { return c.next.Add(1) - 1 }

// Last returns the most recently returned value. Calling Last before
// any Next returns start-1.
func (c *Counter) Last() int64 { return c.next.Load() - 1 }

// AcknowledgedCounter is a Counter whose Last only advances once the
// consumer acknowledges that the corresponding insert completed. YCSB
// uses it so that key-choosing generators never select a key whose
// record is still being inserted by another thread.
//
// It is safe for concurrent use.
type AcknowledgedCounter struct {
	c Counter

	mu     sync.Mutex
	limit  int64  // highest value v such that all of [start, v] are acked
	window []bool // ring buffer of acks above limit
}

// ackWindow is the size of the acknowledgement ring buffer; inserts
// more than ackWindow ahead of the slowest outstanding insert block
// conceptually (we grow instead, YCSB throws).
const ackWindow = 1 << 16

// NewAcknowledgedCounter returns an acknowledged counter starting at
// start.
func NewAcknowledgedCounter(start int64) *AcknowledgedCounter {
	a := &AcknowledgedCounter{limit: start - 1}
	a.c.next.Store(start)
	a.window = make([]bool, ackWindow)
	return a
}

// Next reserves and returns the next key to insert.
func (a *AcknowledgedCounter) Next(r *rand.Rand) int64 { return a.c.Next(r) }

// Last returns the highest value v such that every value up to and
// including v has been acknowledged.
func (a *AcknowledgedCounter) Last() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.limit
}

// Acknowledge records that the insert of value completed. Values may
// be acknowledged in any order.
func (a *AcknowledgedCounter) Acknowledge(value int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if value <= a.limit {
		return // duplicate ack
	}
	for value-a.limit > int64(len(a.window)) {
		a.window = append(a.window, make([]bool, len(a.window))...)
	}
	a.window[value%int64(len(a.window))] = true
	// Slide the limit over every contiguous acknowledged slot.
	for {
		idx := (a.limit + 1) % int64(len(a.window))
		if !a.window[idx] {
			break
		}
		a.window[idx] = false
		a.limit++
	}
}

// Uniform returns integers uniformly distributed in [lb, ub], both
// inclusive, matching YCSB's UniformIntegerGenerator.
type Uniform struct {
	lb, ub int64
	last   int64
}

// NewUniform returns a uniform generator over the inclusive interval
// [lb, ub]. It panics if ub < lb.
func NewUniform(lb, ub int64) *Uniform {
	if ub < lb {
		panic("generator: uniform interval is empty")
	}
	return &Uniform{lb: lb, ub: ub}
}

// Next returns the next uniformly distributed value.
func (u *Uniform) Next(r *rand.Rand) int64 {
	u.last = u.lb + r.Int63n(u.ub-u.lb+1)
	return u.last
}

// Last returns the most recent value produced by Next.
func (u *Uniform) Last() int64 { return u.last }

// zipfianConstant is the default theta for Zipfian generators, as in
// YCSB.
const zipfianConstant = 0.99

// Zipfian generates integers in [base, base+items) with a Zipfian
// ("80/20") popularity skew: item 0 is most popular, item 1 next, and
// so on. The implementation follows Gray et al., "Quickly Generating
// Billion-Record Synthetic Databases" (SIGMOD 1994), like YCSB's
// ZipfianGenerator, including support for growing item counts.
type Zipfian struct {
	items int64
	base  int64

	theta          float64
	zeta2theta     float64
	alpha          float64
	zetan          float64
	eta            float64
	countForZeta   int64
	allowItemDecr  bool
	lastVal        int64
	allowShrinkLog bool
}

// NewZipfian returns a Zipfian generator over [base, base+items) with
// the default YCSB constant 0.99.
func NewZipfian(base, items int64) *Zipfian {
	return NewZipfianTheta(base, items, zipfianConstant)
}

// NewZipfianTheta returns a Zipfian generator over [base, base+items)
// with the given theta in (0, 1).
func NewZipfianTheta(base, items int64, theta float64) *Zipfian {
	if items < 1 {
		panic("generator: zipfian needs at least one item")
	}
	z := &Zipfian{
		items: items,
		base:  base,
		theta: theta,
	}
	z.zeta2theta = zetaStatic(0, 2, theta, 0)
	z.alpha = 1.0 / (1.0 - theta)
	z.zetan = zetaStatic(0, items, theta, 0)
	z.countForZeta = items
	z.eta = z.etaFor(items)
	return z
}

func (z *Zipfian) etaFor(n int64) float64 {
	return (1 - math.Pow(2.0/float64(n), 1-z.theta)) / (1 - z.zeta2theta/z.zetan)
}

// zetaStatic computes the incremental zeta sum over (st, n] given the
// partial sum initial over (0, st].
func zetaStatic(st, n int64, theta, initial float64) float64 {
	sum := initial
	for i := st; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), theta)
	}
	return sum
}

// NextCount returns the next value assuming itemCount items; it
// recomputes the zeta constant incrementally when the item count has
// grown (as during inserts with the "latest" distribution).
func (z *Zipfian) NextCount(r *rand.Rand, itemCount int64) int64 {
	if itemCount != z.countForZeta {
		if itemCount > z.countForZeta {
			z.zetan = zetaStatic(z.countForZeta, itemCount, z.theta, z.zetan)
		} else {
			// Recompute from scratch on shrink (delete-heavy loads).
			z.zetan = zetaStatic(0, itemCount, z.theta, 0)
		}
		z.countForZeta = itemCount
		z.eta = z.etaFor(itemCount)
	}
	u := r.Float64()
	uz := u * z.zetan
	var ret int64
	switch {
	case uz < 1.0:
		ret = z.base
	case uz < 1.0+math.Pow(0.5, z.theta):
		ret = z.base + 1
	default:
		ret = z.base + int64(float64(itemCount)*math.Pow(z.eta*u-z.eta+1, z.alpha))
	}
	if ret >= z.base+itemCount {
		ret = z.base + itemCount - 1 // guard fp rounding at u→1
	}
	z.lastVal = ret
	return ret
}

// Next returns the next Zipfian-distributed value over the
// construction-time item count.
func (z *Zipfian) Next(r *rand.Rand) int64 { return z.NextCount(r, z.items) }

// Last returns the most recent value produced.
func (z *Zipfian) Last() int64 { return z.lastVal }

// fnvOffset64 and fnvPrime64 are the FNV-1a 64-bit parameters used by
// YCSB's Utils.FNVhash64.
const (
	fnvOffset64 = 0xCBF29CE484222325
	fnvPrime64  = 0x100000001B3
)

// FNVHash64 hashes an int64 with FNV-1a exactly as YCSB's
// Utils.FNVhash64 does (byte-at-a-time over the 8 little-endian
// bytes), returning a non-negative value.
func FNVHash64(v int64) int64 {
	hash := uint64(fnvOffset64)
	uv := uint64(v)
	for i := 0; i < 8; i++ {
		octet := uv & 0xff
		uv >>= 8
		hash ^= octet
		hash *= fnvPrime64
	}
	h := int64(hash)
	if h < 0 {
		h = -h
	}
	return h
}

// ScrambledZipfian produces a Zipfian-popularity sequence whose
// popular items are scattered across the whole keyspace rather than
// clustered at the low end, by hashing the underlying Zipfian draw.
// This matches YCSB's ScrambledZipfianGenerator, the default
// "zipfian" request distribution.
type ScrambledZipfian struct {
	z         *Zipfian
	min       int64
	itemCount int64
	last      int64
}

// scrambledZetan is the precomputed zetan YCSB uses for its fixed
// internal item count.
const (
	scrambledItemCount = int64(10000000000)
	scrambledZetan     = 26.46902820178302
)

// NewScrambledZipfian returns a scrambled-Zipfian generator over the
// inclusive interval [min, max].
func NewScrambledZipfian(min, max int64) *ScrambledZipfian {
	s := &ScrambledZipfian{min: min, itemCount: max - min + 1}
	// Like YCSB: the underlying Zipfian runs over a huge fixed item
	// space with a precomputed zetan so construction is O(1).
	s.z = &Zipfian{
		items:        scrambledItemCount,
		base:         0,
		theta:        zipfianConstant,
		zeta2theta:   zetaStatic(0, 2, zipfianConstant, 0),
		alpha:        1.0 / (1.0 - zipfianConstant),
		zetan:        scrambledZetan,
		countForZeta: scrambledItemCount,
	}
	s.z.eta = s.z.etaFor(scrambledItemCount)
	return s
}

// Next returns the next scrambled-Zipfian value in [min, max].
func (s *ScrambledZipfian) Next(r *rand.Rand) int64 {
	v := s.z.Next(r)
	s.last = s.min + FNVHash64(v)%s.itemCount
	return s.last
}

// Last returns the most recent value produced.
func (s *ScrambledZipfian) Last() int64 { return s.last }

// SkewedLatest draws keys Zipfian-skewed towards the most recently
// inserted record: key N-1 is the most popular. The basis counter
// supplies the current maximum key.
type SkewedLatest struct {
	basis Integer
	z     *Zipfian
	last  int64
}

// NewSkewedLatest returns a skewed-latest generator over keys counted
// by basis (typically the insert-key AcknowledgedCounter).
func NewSkewedLatest(basis Integer) *SkewedLatest {
	return &SkewedLatest{basis: basis, z: NewZipfian(0, max64(basis.Last()+1, 1))}
}

// Next returns the next skewed-latest key.
func (s *SkewedLatest) Next(r *rand.Rand) int64 {
	maxKey := s.basis.Last()
	n := max64(maxKey+1, 1)
	s.last = maxKey - s.z.NextCount(r, n)
	if s.last < 0 {
		s.last = 0
	}
	return s.last
}

// Last returns the most recent value produced.
func (s *SkewedLatest) Last() int64 { return s.last }

// Hotspot returns integers from [lb, ub] where a fraction
// hotOpnFraction of draws land in the first hotsetFraction of the
// interval, matching YCSB's HotspotIntegerGenerator.
type Hotspot struct {
	lb, ub         int64
	hotInterval    int64
	coldInterval   int64
	hotsetFraction float64
	hotOpnFraction float64
	last           int64
}

// NewHotspot returns a hotspot generator over [lb, ub] with the given
// hot-set and hot-operation fractions in [0, 1].
func NewHotspot(lb, ub int64, hotsetFraction, hotOpnFraction float64) *Hotspot {
	if hotsetFraction < 0 || hotsetFraction > 1 {
		hotsetFraction = 0.2
	}
	if hotOpnFraction < 0 || hotOpnFraction > 1 {
		hotOpnFraction = 0.8
	}
	if lb > ub {
		panic("generator: hotspot interval is empty")
	}
	interval := ub - lb + 1
	hot := int64(float64(interval) * hotsetFraction)
	return &Hotspot{
		lb:             lb,
		ub:             ub,
		hotsetFraction: hotsetFraction,
		hotOpnFraction: hotOpnFraction,
		hotInterval:    hot,
		coldInterval:   interval - hot,
	}
}

// Next returns the next hotspot-distributed value.
func (h *Hotspot) Next(r *rand.Rand) int64 {
	if r.Float64() < h.hotOpnFraction && h.hotInterval > 0 {
		h.last = h.lb + r.Int63n(h.hotInterval)
	} else {
		if h.coldInterval <= 0 {
			h.last = h.lb + r.Int63n(h.hotInterval)
		} else {
			h.last = h.lb + h.hotInterval + r.Int63n(h.coldInterval)
		}
	}
	return h.last
}

// Last returns the most recent value produced.
func (h *Hotspot) Last() int64 { return h.last }

// Exponential generates values with an exponential distribution, used
// by YCSB to model recency skew ("exponential" request distribution).
// A fraction `percentile` of draws fall within the first `frac` of
// the keyspace of size n (YCSB defaults: 95 % within 0.8571…).
type Exponential struct {
	gamma float64
	last  int64
}

// NewExponential returns a generator where percentile (e.g. 95) of
// the mass lies within fraction range of the dataset size bound.
func NewExponential(percentile, rangeFraction float64, datasetSize int64) *Exponential {
	bound := rangeFraction * float64(datasetSize)
	if bound <= 0 {
		bound = 1
	}
	return &Exponential{gamma: -math.Log(1.0-percentile/100.0) / bound}
}

// NewExponentialMean returns an exponential generator with the given
// mean.
func NewExponentialMean(mean float64) *Exponential {
	if mean <= 0 {
		panic("generator: exponential mean must be positive")
	}
	return &Exponential{gamma: 1.0 / mean}
}

// Next returns the next exponentially distributed value (≥ 0).
func (e *Exponential) Next(r *rand.Rand) int64 {
	e.last = int64(-math.Log(1.0-r.Float64()) / e.gamma)
	return e.last
}

// Last returns the most recent value produced.
func (e *Exponential) Last() int64 { return e.last }

// Sequential returns keys in strictly sequential order looping over
// [lb, ub], matching YCSB's SequentialGenerator; useful for full
// sweeps such as the CEW validation scan.
type Sequential struct {
	lb, ub  int64
	counter atomic.Int64
}

// NewSequential returns a sequential generator over [lb, ub].
func NewSequential(lb, ub int64) *Sequential {
	if ub < lb {
		panic("generator: sequential interval is empty")
	}
	return &Sequential{lb: lb, ub: ub}
}

// Next returns the next key in sequence, wrapping at ub. It is safe
// for concurrent use.
func (s *Sequential) Next(*rand.Rand) int64 {
	n := s.counter.Add(1) - 1
	return s.lb + n%(s.ub-s.lb+1)
}

// Last returns the most recent value produced.
func (s *Sequential) Last() int64 {
	n := s.counter.Load() - 1
	if n < 0 {
		return s.lb
	}
	return s.lb + n%(s.ub-s.lb+1)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
