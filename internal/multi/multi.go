// Package multi coordinates several benchmark client instances
// running against the same store — the paper's Section V-A
// multi-host experiment ("We ran YCSB+T instances on multiple EC2
// hosts but the net transaction throughput across all parallel
// instances was similar to the throughput from the same number of
// threads on a single host. This supports our argument that we are
// hitting a request rate limit.").
//
// Each instance owns its client, workload and registry (as a separate
// process on a separate host would); Run releases them through a
// start barrier so their measurement windows coincide, then
// aggregates throughput. YCSB++'s distributed-client coordination is
// the same idea across machines; in-process instances reproduce the
// aggregate-throughput behaviour because the bottleneck under study
// is the store, not the client host.
package multi

import (
	"context"
	"fmt"
	"sync"
	"time"

	"ycsbt/internal/client"
)

// Result aggregates one coordinated multi-instance run.
type Result struct {
	// PerInstance holds each instance's own phase result, in order.
	PerInstance []*client.Result
	// TotalOperations sums operations across instances.
	TotalOperations int64
	// TotalAborts sums aborted transactions across instances.
	TotalAborts int64
	// WallTime is the barrier-to-last-finish duration.
	WallTime time.Duration
	// TotalThroughput is TotalOperations / WallTime.
	TotalThroughput float64
}

// Run executes the transaction phase of every instance concurrently,
// synchronized on a start barrier. Instances must already be loaded
// (or share a pre-loaded store).
func Run(ctx context.Context, instances []*client.Client) (*Result, error) {
	if len(instances) == 0 {
		return nil, fmt.Errorf("multi: no instances")
	}
	var barrier, done sync.WaitGroup
	barrier.Add(1)
	results := make([]*client.Result, len(instances))
	errs := make([]error, len(instances))

	for i, inst := range instances {
		done.Add(1)
		go func(i int, inst *client.Client) {
			defer done.Done()
			barrier.Wait()
			results[i], errs[i] = inst.Run(ctx)
		}(i, inst)
	}
	start := time.Now()
	barrier.Done()
	done.Wait()
	wall := time.Since(start)

	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("multi: instance %d: %w", i, err)
		}
	}
	out := &Result{PerInstance: results, WallTime: wall}
	for _, r := range results {
		out.TotalOperations += r.Operations
		out.TotalAborts += r.Aborts
	}
	if wall > 0 {
		out.TotalThroughput = float64(out.TotalOperations) / wall.Seconds()
	}
	return out, nil
}
