package multi

import (
	"context"
	"fmt"
	"testing"
	"time"

	"ycsbt/internal/client"
	"ycsbt/internal/cloudsim"
	"ycsbt/internal/kvstore"
	"ycsbt/internal/measurement"
	"ycsbt/internal/properties"
	"ycsbt/internal/txn"
	"ycsbt/internal/workload"
)

// buildInstances creates n clients over the SAME shared simulated
// container, each with its own workload/registry — one per "host".
func buildInstances(t *testing.T, n, threadsEach int, cloud *cloudsim.Store) []*client.Client {
	t.Helper()
	out := make([]*client.Client, n)
	for i := 0; i < n; i++ {
		m, err := txn.NewManager(txn.Options{}, cloud)
		if err != nil {
			t.Fatal(err)
		}
		p := properties.FromMap(map[string]string{
			"workload":                  "closedeconomy",
			"recordcount":               "300",
			"totalcash":                 "30000",
			"operationcount":            "1000000000",
			"maxexecutiontime":          "1",
			"threadcount":               fmt.Sprint(threadsEach),
			"readproportion":            "0.9",
			"readmodifywriteproportion": "0.1",
			"requestdistribution":       "zipfian",
			"seed":                      fmt.Sprint(42 + i*1000),
		})
		w, err := workload.New("closedeconomy")
		if err != nil {
			t.Fatal(err)
		}
		reg := measurement.NewRegistry(0)
		if err := w.Init(p, reg); err != nil {
			t.Fatal(err)
		}
		cfg := client.BuildConfig(p)
		cfg.SkipValidation = true
		cfg.MaxExecutionTime = 400 * time.Millisecond
		c, err := client.New(cfg, w, txn.NewBinding(m), reg)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = c
	}
	return out
}

// loadStore populates the shared store through a zero-latency path.
func loadStore(t *testing.T, inner *kvstore.Store) {
	t.Helper()
	m, err := txn.NewManager(txn.Options{}, txn.NewLocalStore("was", inner))
	if err != nil {
		t.Fatal(err)
	}
	p := properties.FromMap(map[string]string{
		"workload":    "closedeconomy",
		"recordcount": "300",
		"totalcash":   "30000",
		"threadcount": "8",
	})
	w, _ := workload.New("closedeconomy")
	if err := w.Init(p, nil); err != nil {
		t.Fatal(err)
	}
	cfg := client.BuildConfig(p)
	cfg.SkipValidation = true
	c, err := client.New(cfg, w, txn.NewBinding(m), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Load(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(context.Background(), nil); err == nil {
		t.Error("empty instance list accepted")
	}
}

func TestMultiInstanceAggregation(t *testing.T) {
	ctx := context.Background()
	inner := kvstore.OpenMemory()
	defer inner.Close()
	loadStore(t, inner)
	cfg := cloudsim.WASPreset()
	cfg.ReadLatency = 500 * time.Microsecond
	cfg.WriteLatency = time.Millisecond
	cloud := cloudsim.NewOver(cfg, inner)

	instances := buildInstances(t, 3, 2, cloud)
	res, err := Run(ctx, instances)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerInstance) != 3 {
		t.Fatalf("per-instance results: %d", len(res.PerInstance))
	}
	var sum int64
	for _, r := range res.PerInstance {
		if r.Operations == 0 {
			t.Error("an instance did no work")
		}
		sum += r.Operations
	}
	if sum != res.TotalOperations {
		t.Errorf("TotalOperations = %d, sum = %d", res.TotalOperations, sum)
	}
	if res.TotalThroughput <= 0 {
		t.Errorf("TotalThroughput = %v", res.TotalThroughput)
	}
}

// TestRateLimitGovernsAggregateThroughput reproduces the paper's
// Section V-A observation: against a rate-capped container, N
// instances with T/N threads each achieve roughly the same total
// throughput as one instance with T threads — the container, not the
// client host, is the bottleneck.
func TestRateLimitGovernsAggregateThroughput(t *testing.T) {
	ctx := context.Background()
	run := func(instances, threadsEach int) float64 {
		inner := kvstore.OpenMemory()
		defer inner.Close()
		loadStore(t, inner)
		cfg := cloudsim.Config{
			Name:         "was",
			ReadLatency:  500 * time.Microsecond,
			WriteLatency: time.Millisecond,
			RateLimit:    2000, // requests/sec cap well below latency-bound demand
		}
		cloud := cloudsim.NewOver(cfg, inner)
		res, err := Run(ctx, buildInstances(t, instances, threadsEach, cloud))
		if err != nil {
			t.Fatal(err)
		}
		return res.TotalThroughput
	}
	single := run(1, 16)
	split := run(4, 4)
	ratio := split / single
	if ratio < 0.7 || ratio > 1.4 {
		t.Errorf("splitting threads across instances changed capped throughput: 1×16 = %.0f, 4×4 = %.0f (ratio %.2f)",
			single, split, ratio)
	}
	t.Logf("rate-capped: 1 instance × 16 threads = %.0f tps; 4 instances × 4 threads = %.0f tps", single, split)
}
