// End-to-end exercises of the framed binary protocol: the batch
// workload over the rawhttp binding with the transport pinned to HTTP
// versus negotiated binary (the BENCH_wire.json old-vs-new cell), and
// a fidelity check that both transports land identical records.
package ycsbt_test

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"sync/atomic"
	"testing"
	"time"

	"ycsbt/internal/client"
	"ycsbt/internal/db"
	"ycsbt/internal/httpkv"
	"ycsbt/internal/kvstore"
	"ycsbt/internal/kvwire"
	"ycsbt/internal/measurement"
	"ycsbt/internal/properties"
	"ycsbt/internal/workload"
)

// startWireKVServer serves a fresh in-memory store over loopback with
// both front ends live — HTTP advertising the binary listener — so a
// client can take either path from the same property file.
func startWireKVServer(tb testing.TB) (*kvstore.Store, string) {
	tb.Helper()
	inner, err := kvstore.Open(kvstore.Options{})
	if err != nil {
		tb.Fatal(err)
	}
	core := kvwire.NewCore(inner, nil, 0)
	wireLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		tb.Fatal(err)
	}
	wireSrv := kvwire.NewServer(core, kvwire.ServerOptions{})
	go wireSrv.Serve(wireLn)
	httpLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		tb.Fatal(err)
	}
	srv := &http.Server{Handler: httpkv.NewServerWithOptions(inner, httpkv.ServerOptions{
		Core:     core,
		WireAddr: wireLn.Addr().String(),
	})}
	go srv.Serve(httpLn)
	tb.Cleanup(func() {
		srv.Close()
		wireSrv.Close()
		inner.Close()
	})
	return inner, "http://" + httpLn.Addr().String()
}

// wireLoadCell runs one batched load phase (the batch workload: pure
// inserts coalesced into 16-op envelopes across 32 client threads)
// over the rawhttp binding with the transport pinned by wireMode, and
// returns its throughput.
func wireLoadCell(tb testing.TB, url string, records int64, wireMode string) float64 {
	tb.Helper()
	p := properties.FromMap(map[string]string{
		"workload":        "core",
		"recordcount":     fmt.Sprint(records),
		"threadcount":     "32",
		"fieldcount":      "1",
		"fieldlength":     "100",
		"middleware":      "metered,batching",
		"batch.size":      "16",
		"batch.linger_ms": "1",
		"rawhttp.wire":    wireMode,
	})
	w, err := workload.New("core")
	if err != nil {
		tb.Fatal(err)
	}
	reg := measurement.NewRegistry(0)
	if err := w.Init(p, reg); err != nil {
		tb.Fatal(err)
	}
	raw := httpkv.NewClient(url, nil)
	cfg := client.BuildConfig(p)
	cfg.SkipValidation = true
	c, err := client.New(cfg, w, raw, reg)
	if err != nil {
		tb.Fatal(err)
	}
	res, err := c.Load(context.Background())
	if err != nil {
		tb.Fatal(err)
	}
	return res.Throughput
}

// transportCell times 32 client threads shipping 16-op batch
// envelopes over one transport, with no workload harness in the way:
// the transport's ops/s ceiling, which is what bounds every rawhttp
// figure once the engine stops being the bottleneck. mkOps fills the
// envelope for sequence number n.
func transportCell(b *testing.B, url, mode string, mkOps func(n int64, ops []db.BatchOp)) {
	b.Helper()
	c := httpkv.NewClient(url, nil)
	p := properties.New()
	p.Set("rawhttp.wire", mode)
	if err := c.Init(p); err != nil {
		b.Fatal(err)
	}
	defer c.Cleanup()
	ctx := context.Background()
	// Prime the connection pool and (in auto mode) sniff the binary
	// advertisement so the timed region measures steady state, not
	// negotiation.
	if err := c.Insert(ctx, "usertable", "prime", map[string][]byte{"field0": []byte("x")}); err != nil {
		b.Fatal(err)
	}
	var seq, opsDone atomic.Int64
	b.SetParallelism(32)
	b.ResetTimer()
	start := time.Now()
	b.RunParallel(func(pb *testing.PB) {
		ops := make([]db.BatchOp, 16)
		for pb.Next() {
			mkOps(seq.Add(1), ops)
			for _, r := range c.ExecBatch(ctx, ops) {
				if r.Err != nil {
					b.Error(r.Err)
					return
				}
			}
			opsDone.Add(int64(len(ops)))
		}
	})
	b.ReportMetric(float64(opsDone.Load())/time.Since(start).Seconds(), "tput_ops/s")
}

// BenchmarkWireVsHTTP is the protocol acceptance benchmark: the batch
// workload at 32 client threads over HTTP/NDJSON (rawhttp.wire=off —
// the PR-7 transport) versus the negotiated framed binary protocol.
// The Read cells carry the ≥2x acceptance bound: on read envelopes
// the per-result JSON field encode/decode and HTTP/1.1 request
// machinery are the whole per-op cost, and the frames eliminate them.
// The Insert cells ride along for visibility — there the engine's
// write path (version chains, shard locks) is the same on both sides,
// so the transport win shows up but compresses.
func BenchmarkWireVsHTTP(b *testing.B) {
	val := make([]byte, 100)
	for _, cell := range []struct{ name, mode string }{
		{"HTTP", httpkv.WireModeOff},
		{"Wire", httpkv.WireModeAuto},
	} {
		b.Run("Read/"+cell.name, func(b *testing.B) {
			store, url := startWireKVServer(b)
			for i := 0; i < 1000; i++ {
				if _, err := store.Put("usertable", fmt.Sprintf("user%04d", i), map[string][]byte{"field0": val}); err != nil {
					b.Fatal(err)
				}
			}
			transportCell(b, url, cell.mode, func(n int64, ops []db.BatchOp) {
				for j := range ops {
					ops[j] = db.BatchOp{
						Op: db.OpRead, Table: "usertable",
						Key: fmt.Sprintf("user%04d", (int(n)+j)%1000),
					}
				}
			})
		})
		b.Run("Insert/"+cell.name, func(b *testing.B) {
			_, url := startWireKVServer(b)
			transportCell(b, url, cell.mode, func(n int64, ops []db.BatchOp) {
				for j := range ops {
					ops[j] = db.BatchOp{
						Op: db.OpInsert, Table: "usertable",
						Key:    fmt.Sprintf("user%08d-%02d", n, j),
						Values: map[string][]byte{"field0": val},
					}
				}
			})
		})
	}
}

// TestWireLoadFidelity checks the binary transport on two axes: it
// lands exactly the records the HTTP transport lands, and the server
// stays consistent when a client switches transports mid-stream.
func TestWireLoadFidelity(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive e2e cell")
	}
	const records = 1200
	httpStore, httpURL := startWireKVServer(t)
	wireLoadCell(t, httpURL, records, httpkv.WireModeOff)
	wireStore, wireURL := startWireKVServer(t)
	wireLoadCell(t, wireURL, records, httpkv.WireModeAuto)

	if n := wireStore.Len("usertable"); n != records {
		t.Fatalf("binary load landed %d records, want %d", n, records)
	}
	if httpStore.Len("usertable") != wireStore.Len("usertable") {
		t.Fatalf("record counts diverge: http=%d wire=%d",
			httpStore.Len("usertable"), wireStore.Len("usertable"))
	}
	// Spot-check one record end to end across transports: written over
	// binary, read over HTTP.
	c := httpkv.NewClient(wireURL, nil)
	p := properties.New()
	p.Set("rawhttp.wire", httpkv.WireModeOff)
	if err := c.Init(p); err != nil {
		t.Fatal(err)
	}
	defer c.Cleanup()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	rec, err := c.Read(ctx, "usertable", "user0", nil)
	if err != nil || len(rec) == 0 {
		kvs, serr := c.Scan(ctx, "usertable", "", 1, nil)
		if serr != nil || len(kvs) == 0 {
			t.Fatalf("read-back over HTTP of binary-written data: %v / scan %v", err, serr)
		}
	}
}
