// End-to-end exercises of the batch-native request path: the load
// phase over the rawhttp binding with and without the batching
// middleware (the headline ≥2x claim), and a CEW run over batched
// rawhttp confirming the Tier 6 anomaly detection still sees the
// non-transactional store's lost updates when operations travel in
// /v1/batch envelopes.
package ycsbt_test

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"testing"
	"time"

	"ycsbt/internal/client"
	"ycsbt/internal/httpkv"
	"ycsbt/internal/kvstore"
	"ycsbt/internal/measurement"
	"ycsbt/internal/obs"
	"ycsbt/internal/properties"
	"ycsbt/internal/workload"
)

// startKVServer serves a fresh in-memory store over loopback HTTP,
// optionally with a per-request service latency (the stand-in for
// the paper's SSD-backed engine, as in the Figure 4/5 cells). The
// throughput cells use zero delay: a sleeping request still overlaps
// freely, so only the per-request CPU cost — what batching actually
// amortizes — should bound the single-op path.
func startKVServer(tb testing.TB, delay time.Duration) (*kvstore.Store, string) {
	tb.Helper()
	// YCSBT_BENCH_OBS=1 instruments the engine and the HTTP server with
	// a live registry, so `make bench-quick` run with and without it
	// measures the observability layer's end-to-end overhead.
	var reg *obs.Registry
	if os.Getenv("YCSBT_BENCH_OBS") == "1" {
		reg = obs.NewRegistry()
	}
	inner, err := kvstore.Open(kvstore.Options{Metrics: reg})
	if err != nil {
		tb.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		tb.Fatal(err)
	}
	store := httpkv.NewServerWithOptions(inner, httpkv.ServerOptions{Metrics: reg})
	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if delay > 0 {
			time.Sleep(delay)
		}
		store.ServeHTTP(w, r)
	})
	srv := &http.Server{Handler: handler}
	go srv.Serve(ln)
	tb.Cleanup(func() { srv.Close(); inner.Close() })
	return inner, "http://" + ln.Addr().String()
}

// rawhttpLoadCell runs one load phase (pure inserts) over the rawhttp
// binding with the given coalescing width and returns its throughput.
func rawhttpLoadCell(tb testing.TB, url string, records int64, batchSize int) float64 {
	tb.Helper()
	p := properties.FromMap(map[string]string{
		"workload":        "core",
		"recordcount":     fmt.Sprint(records),
		"threadcount":     "16",
		"fieldcount":      "1",
		"fieldlength":     "100",
		"middleware":      "metered,batching",
		"batch.size":      fmt.Sprint(batchSize),
		"batch.linger_ms": "1",
	})
	w, err := workload.New("core")
	if err != nil {
		tb.Fatal(err)
	}
	reg := measurement.NewRegistry(0)
	if err := w.Init(p, reg); err != nil {
		tb.Fatal(err)
	}
	raw := httpkv.NewClient(url, nil)
	cfg := client.BuildConfig(p)
	cfg.SkipValidation = true
	c, err := client.New(cfg, w, raw, reg)
	if err != nil {
		tb.Fatal(err)
	}
	res, err := c.Load(context.Background())
	if err != nil {
		tb.Fatal(err)
	}
	return res.Throughput
}

// BenchmarkBatchVsSingle is the acceptance benchmark: the same
// rawhttp load at batch.size=1 (identity middleware, one HTTP round
// trip per insert) versus batch.size=16 (inserts coalesced across the
// 16 client threads into /v1/batch envelopes). The batched cell
// should clear 2x the single-op throughput.
func BenchmarkBatchVsSingle(b *testing.B) {
	for _, size := range []int{1, 16} {
		b.Run(fmt.Sprintf("Batch%d", size), func(b *testing.B) {
			var tput float64
			for i := 0; i < b.N; i++ {
				_, url := startKVServer(b, 0)
				tput = rawhttpLoadCell(b, url, 2000, size)
			}
			b.ReportMetric(tput, "tput_ops/s")
		})
	}
}

// TestBatchLoadSpeedupAndFidelity checks the batched load path on two
// axes: it lands exactly the same records a single-op load lands, and
// it is faster. The strict ≥2x bound lives in BenchmarkBatchVsSingle
// where the cell is big enough to be stable; here the margin is >1x
// so the test stays robust on a loaded CI machine.
func TestBatchLoadSpeedupAndFidelity(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive e2e cell")
	}
	const records = 1500
	single, singleURL := startKVServer(t, 0)
	tputSingle := rawhttpLoadCell(t, singleURL, records, 1)
	batched, batchedURL := startKVServer(t, 0)
	tputBatched := rawhttpLoadCell(t, batchedURL, records, 16)

	if n := batched.Len("usertable"); n != records {
		t.Fatalf("batched load landed %d records, want %d", n, records)
	}
	if single.Len("usertable") != batched.Len("usertable") {
		t.Fatalf("record counts diverge: single=%d batched=%d",
			single.Len("usertable"), batched.Len("usertable"))
	}
	t.Logf("load tput: single=%.0f ops/s batched=%.0f ops/s (%.1fx)",
		tputSingle, tputBatched, tputBatched/tputSingle)
	if tputBatched <= tputSingle {
		t.Errorf("batching did not speed up the load: %.0f <= %.0f ops/s",
			tputBatched, tputSingle)
	}
}

// TestBatchedCEWAnomalyDetected runs the closed-economy workload over
// batched rawhttp and checks Tier 6 still detects the lost-update
// anomalies of the non-transactional store — the batch envelope must
// not mask the races the benchmark exists to expose. (If anything the
// linger window widens the read-modify-write race.)
func TestBatchedCEWAnomalyDetected(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive e2e cell")
	}
	ctx := context.Background()
	// The race is probabilistic; retry a couple of short cells rather
	// than running one long one.
	var score float64
	for attempt := 0; attempt < 3; attempt++ {
		score = batchedCEWCell(t, ctx, 400*time.Millisecond)
		if score > 0 {
			break
		}
	}
	if score == 0 {
		t.Fatal("no anomalies detected over batched rawhttp (expected lost updates)")
	}
	t.Logf("batched CEW anomaly score = %g", score)
}

func batchedCEWCell(t *testing.T, ctx context.Context, cellTime time.Duration) float64 {
	t.Helper()
	inner, url := startKVServer(t, 200*time.Microsecond)
	p := properties.FromMap(map[string]string{
		"workload":                  "closedeconomy",
		"recordcount":               "200",
		"totalcash":                 "20000",
		"operationcount":            "1000000000", // bounded by MaxExecutionTime
		"threadcount":               "16",
		"readproportion":            "0.2",
		"readmodifywriteproportion": "0.8",
		"requestdistribution":       "zipfian",
		"fieldcount":                "1",
		"fieldlength":               "100",
		"middleware":                "metered,batching",
		"batch.size":                "8",
		"batch.linger_ms":           "1",
	})
	w, err := workload.New("closedeconomy")
	if err != nil {
		t.Fatal(err)
	}
	reg := measurement.NewRegistry(0)
	if err := w.Init(p, reg); err != nil {
		t.Fatal(err)
	}

	// Load straight into the store; run the timed phase over batched
	// rawhttp; validate against the store, as the bench cells do.
	loadCfg := client.BuildConfig(p)
	loadCfg.SkipValidation = true
	loadCfg.Middleware = "metered"
	lc, err := client.New(loadCfg, w, kvstore.NewBinding(inner), reg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lc.Load(ctx); err != nil {
		t.Fatal(err)
	}

	runCfg := client.BuildConfig(p)
	runCfg.SkipValidation = true
	runCfg.MaxExecutionTime = cellTime
	rc, err := client.New(runCfg, w, httpkv.NewClient(url, nil), reg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rc.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Operations == 0 {
		t.Fatal("batched CEW cell completed zero operations")
	}
	v, err := w.Validate(ctx, kvstore.NewBinding(inner))
	if err != nil {
		t.Fatal(err)
	}
	return v.AnomalyScore
}
